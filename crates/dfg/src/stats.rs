//! Graph statistics: the size and operator-mix measurements behind the
//! paper's O(E·V) size claim (§3) and the switch-elimination comparison
//! (§4).

use crate::graph::{ArcKind, Dfg};
use crate::op::OpKind;

/// Operator and arc counts of a dataflow graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DfgStats {
    /// Total operators.
    pub ops: usize,
    /// `switch` operators.
    pub switches: usize,
    /// `merge` operators.
    pub merges: usize,
    /// `synch` operators (any arity).
    pub synchs: usize,
    /// Memory operations (loads + stores, including array and I-structure).
    pub memory_ops: usize,
    /// Loads only.
    pub loads: usize,
    /// Stores only.
    pub stores: usize,
    /// Arithmetic/logic operators.
    pub alu: usize,
    /// Loop-control operators (entry + exit + iteration collectors).
    pub loop_control: usize,
    /// Compound macro operators produced by the fusion pass.
    pub macros: usize,
    /// Operators folded *inside* macros (micro-program steps in total);
    /// `ops + fused_ops - macros` recovers the unfused operator count.
    pub fused_ops: usize,
    /// Total arcs.
    pub arcs: usize,
    /// Arcs carrying dummy access tokens.
    pub access_arcs: usize,
    /// Arcs carrying values.
    pub value_arcs: usize,
}

impl DfgStats {
    /// Gather statistics from a graph.
    pub fn of(g: &Dfg) -> DfgStats {
        let mut s = DfgStats {
            ops: g.len(),
            arcs: g.arc_count(),
            ..DfgStats::default()
        };
        for op in g.op_ids() {
            match g.kind(op) {
                OpKind::Switch | OpKind::CaseSwitch { .. } => s.switches += 1,
                OpKind::Merge => s.merges += 1,
                OpKind::Synch { .. } => s.synchs += 1,
                OpKind::Unary { .. } | OpKind::Binary { .. } => s.alu += 1,
                OpKind::LoopEntry { .. }
                | OpKind::LoopExit { .. }
                | OpKind::PrevIter { .. }
                | OpKind::IterIndex { .. } => {
                    s.loop_control += 1
                }
                OpKind::Macro { steps, .. } => {
                    s.macros += 1;
                    s.fused_ops += steps.len();
                }
                // A fused loop-entry/switch pair is both loop control and
                // a compound: one node standing for two unfused operators.
                OpKind::LoopSwitch { .. } => {
                    s.loop_control += 1;
                    s.macros += 1;
                    s.fused_ops += 2;
                }
                k if k.is_memory() => {
                    s.memory_ops += 1;
                    if k.is_store() {
                        s.stores += 1;
                    } else {
                        s.loads += 1;
                    }
                }
                _ => {}
            }
        }
        for a in g.arcs() {
            match a.kind {
                ArcKind::Access => s.access_arcs += 1,
                ArcKind::Value => s.value_arcs += 1,
            }
        }
        s
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "ops={} (switch={} merge={} synch={} mem={} alu={} loopctl={} macro={}/{}) arcs={} (access={} value={})",
            self.ops,
            self.switches,
            self.merges,
            self.synchs,
            self.memory_ops,
            self.alu,
            self.loop_control,
            self.macros,
            self.fused_ops,
            self.arcs,
            self.access_arcs,
            self.value_arcs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Port;
    use cf2df_cfg::{BinOp, LoopId, VarId};

    #[test]
    fn counts_each_category() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let sw = g.add(OpKind::Switch);
        let m = g.add(OpKind::Merge);
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let st = g.add(OpKind::Store { var: VarId(0) });
        let b = g.add(OpKind::Binary { op: BinOp::Add });
        let le = g.add(OpKind::LoopEntry { loop_id: LoopId(0) });
        g.connect(Port::new(s, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(b, 0), ArcKind::Value);
        let stats = DfgStats::of(&g);
        assert_eq!(stats.ops, 9);
        assert_eq!(stats.switches, 1);
        assert_eq!(stats.merges, 1);
        assert_eq!(stats.synchs, 1);
        assert_eq!(stats.memory_ops, 2);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.alu, 1);
        assert_eq!(stats.loop_control, 1);
        assert_eq!(stats.arcs, 2);
        assert_eq!(stats.access_arcs, 1);
        assert_eq!(stats.value_arcs, 1);
        let _ = (sw, m, sy, st, le);
        assert!(stats.summary().contains("ops=9"));
    }
}
