//! A textual interchange format for dataflow graphs.
//!
//! The paper remarks that "there is no standard textual representation of
//! dataflow programs. Instead they are represented as graphs." This module
//! provides one anyway: a stable, line-based format that round-trips every
//! graph this workspace produces, so compiled programs can be saved,
//! diffed, and reloaded.
//!
//! ```text
//! dfg v1
//! op 0 start
//! op 1 end 2
//! op 2 load 5            # Load { var: VarId(5) }
//! op 3 binary add imm1=1 label "x line"
//! arc 0.0 -> 2.0 access
//! arc 2.0 -> 3.0 value
//! ```

use crate::graph::{ArcKind, Dfg, OpId, Port};
use crate::op::{MacroSrc, MacroStep, OpKind};
use cf2df_cfg::{BinOp, LoopId, UnOp, VarId};
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

fn binop_from(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "lt" => BinOp::Lt,
        "le" => BinOp::Le,
        "gt" => BinOp::Gt,
        "ge" => BinOp::Ge,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        _ => return None,
    })
}

fn src_word(src: MacroSrc) -> String {
    match src {
        MacroSrc::Chain => "p".into(),
        MacroSrc::In(q) => format!("i{q}"),
        MacroSrc::Imm(c) => format!("k{c}"),
    }
}

fn src_from(word: &str) -> Option<MacroSrc> {
    if word == "p" {
        return Some(MacroSrc::Chain);
    }
    if let Some(rest) = word.strip_prefix('i') {
        return Some(MacroSrc::In(rest.parse().ok()?));
    }
    if let Some(rest) = word.strip_prefix('k') {
        return Some(MacroSrc::Imm(rest.parse().ok()?));
    }
    None
}

fn step_word(step: &MacroStep) -> String {
    match step {
        MacroStep::Un(UnOp::Neg, a) => format!("un:neg:{}", src_word(*a)),
        MacroStep::Un(UnOp::Not, a) => format!("un:not:{}", src_word(*a)),
        MacroStep::Bin(op, a, b) => {
            format!("bin:{}:{}:{}", binop_name(*op), src_word(*a), src_word(*b))
        }
        MacroStep::Fwd(a) => format!("fwd:{}", src_word(*a)),
        MacroStep::Zero => "zero".into(),
    }
}

fn step_from(word: &str) -> Option<MacroStep> {
    let parts: Vec<&str> = word.split(':').collect();
    Some(match *parts.first()? {
        "un" => {
            let op = match *parts.get(1)? {
                "neg" => UnOp::Neg,
                "not" => UnOp::Not,
                _ => return None,
            };
            MacroStep::Un(op, src_from(parts.get(2)?)?)
        }
        "bin" => MacroStep::Bin(
            binop_from(parts.get(1)?)?,
            src_from(parts.get(2)?)?,
            src_from(parts.get(3)?)?,
        ),
        "fwd" => MacroStep::Fwd(src_from(parts.get(1)?)?),
        "zero" => MacroStep::Zero,
        _ => return None,
    })
}

fn kind_to_words(kind: &OpKind) -> String {
    match kind {
        OpKind::Start => "start".into(),
        OpKind::End { inputs } => format!("end {inputs}"),
        OpKind::Unary { op: UnOp::Neg } => "unary neg".into(),
        OpKind::Unary { op: UnOp::Not } => "unary not".into(),
        OpKind::Binary { op } => format!("binary {}", binop_name(*op)),
        OpKind::Switch => "switch".into(),
        OpKind::CaseSwitch { arms } => format!("caseswitch {arms}"),
        OpKind::Merge => "merge".into(),
        OpKind::Synch { inputs } => format!("synch {inputs}"),
        OpKind::Identity => "identity".into(),
        OpKind::Gate => "gate".into(),
        OpKind::Load { var } => format!("load {}", var.0),
        OpKind::Store { var } => format!("store {}", var.0),
        OpKind::LoadIdx { var } => format!("loadidx {}", var.0),
        OpKind::StoreIdx { var } => format!("storeidx {}", var.0),
        OpKind::IstLoad { var } => format!("istload {}", var.0),
        OpKind::IstStore { var } => format!("iststore {}", var.0),
        OpKind::LoopEntry { loop_id } => format!("loopentry {}", loop_id.0),
        OpKind::LoopSwitch { loop_id } => format!("loopswitch {}", loop_id.0),
        OpKind::LoopExit { loop_id } => format!("loopexit {}", loop_id.0),
        OpKind::PrevIter { loop_id } => format!("previter {}", loop_id.0),
        OpKind::IterIndex { loop_id } => format!("iterindex {}", loop_id.0),
        OpKind::Macro { inputs, steps } => {
            let mut s = format!("macro {inputs}");
            for step in steps {
                s.push(' ');
                s.push_str(&step_word(step));
            }
            s
        }
    }
}

fn kind_from_words(words: &[&str]) -> Option<OpKind> {
    let num = |i: usize| words.get(i)?.parse::<u32>().ok();
    Some(match *words.first()? {
        "start" => OpKind::Start,
        "end" => OpKind::End { inputs: num(1)? },
        "unary" => match *words.get(1)? {
            "neg" => OpKind::Unary { op: UnOp::Neg },
            "not" => OpKind::Unary { op: UnOp::Not },
            _ => return None,
        },
        "binary" => OpKind::Binary {
            op: binop_from(words.get(1)?)?,
        },
        "switch" => OpKind::Switch,
        "caseswitch" => OpKind::CaseSwitch { arms: num(1)? },
        "merge" => OpKind::Merge,
        "synch" => OpKind::Synch { inputs: num(1)? },
        "identity" => OpKind::Identity,
        "gate" => OpKind::Gate,
        "load" => OpKind::Load { var: VarId(num(1)?) },
        "store" => OpKind::Store { var: VarId(num(1)?) },
        "loadidx" => OpKind::LoadIdx { var: VarId(num(1)?) },
        "storeidx" => OpKind::StoreIdx { var: VarId(num(1)?) },
        "istload" => OpKind::IstLoad { var: VarId(num(1)?) },
        "iststore" => OpKind::IstStore { var: VarId(num(1)?) },
        "loopentry" => OpKind::LoopEntry {
            loop_id: LoopId(num(1)?),
        },
        "loopswitch" => OpKind::LoopSwitch {
            loop_id: LoopId(num(1)?),
        },
        "loopexit" => OpKind::LoopExit {
            loop_id: LoopId(num(1)?),
        },
        "previter" => OpKind::PrevIter {
            loop_id: LoopId(num(1)?),
        },
        "iterindex" => OpKind::IterIndex {
            loop_id: LoopId(num(1)?),
        },
        "macro" => {
            let steps: Option<Vec<MacroStep>> =
                words[2..].iter().map(|w| step_from(w)).collect();
            let steps = steps?;
            if steps.is_empty() {
                return None;
            }
            OpKind::Macro {
                inputs: num(1)?,
                steps,
            }
        }
        _ => return None,
    })
}

/// Serialize a graph to the textual format.
pub fn write_text(g: &Dfg) -> String {
    let mut s = String::from("dfg v1\n");
    for op in g.op_ids() {
        let kind = g.kind(op);
        let _ = write!(s, "op {} {}", op.0, kind_to_words(kind));
        for p in 0..kind.n_inputs() {
            if let Some(c) = g.imm(op, p) {
                let _ = write!(s, " imm{p}={c}");
            }
        }
        let label = g.label(op);
        if !label.is_empty() {
            let _ = write!(s, " label {:?}", label);
        }
        s.push('\n');
    }
    for a in g.arcs() {
        let kind = match a.kind {
            ArcKind::Value => "value",
            ArcKind::Access => "access",
        };
        let _ = writeln!(
            s,
            "arc {}.{} -> {}.{} {}",
            a.from.op.0, a.from.port, a.to.op.0, a.to.port, kind
        );
    }
    s
}

/// Parse a graph from the textual format. Operator ids must be dense and
/// in order (as produced by [`write_text`]).
pub fn read_text(text: &str) -> Result<Dfg, ParseError> {
    let err = |line: usize, msg: &str| ParseError {
        line,
        msg: msg.to_owned(),
    };
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(err(1, "empty input"));
    };
    if header.trim() != "dfg v1" {
        return Err(err(1, "expected header `dfg v1`"));
    }
    let mut g = Dfg::new();
    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "op" => {
                let id: u32 = words
                    .get(1)
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(lineno, "bad op id"))?;
                if id as usize != g.len() {
                    return Err(err(lineno, "op ids must be dense and ordered"));
                }
                // Split off imm/label suffixes.
                let mut kind_end = words.len();
                for (j, w) in words.iter().enumerate().skip(2) {
                    if w.starts_with("imm") || *w == "label" {
                        kind_end = j;
                        break;
                    }
                }
                let kind = kind_from_words(&words[2..kind_end])
                    .ok_or_else(|| err(lineno, "unknown operator kind"))?;
                let op = g.add(kind);
                let mut j = kind_end;
                while j < words.len() {
                    let w = words[j];
                    if w == "label" {
                        // The label is the rest of the line, quoted
                        // (Debug-escaped); recover it approximately.
                        let rest = line.split_once(" label ").map(|x| x.1).unwrap_or("\"\"");
                        let unquoted = rest
                            .trim()
                            .trim_start_matches('"')
                            .trim_end_matches('"')
                            .replace("\\\"", "\"");
                        let cur = g.len() - 1;
                        let _ = cur;
                        g.set_label(op, unquoted);
                        break;
                    }
                    if let Some(rest) = w.strip_prefix("imm") {
                        let (p, v) = rest
                            .split_once('=')
                            .ok_or_else(|| err(lineno, "malformed immediate"))?;
                        let p: usize =
                            p.parse().map_err(|_| err(lineno, "bad immediate port"))?;
                        let v: i64 =
                            v.parse().map_err(|_| err(lineno, "bad immediate value"))?;
                        g.set_imm(op, p, v);
                    } else {
                        return Err(err(lineno, "unexpected token"));
                    }
                    j += 1;
                }
            }
            "arc" => {
                // arc F.P -> T.Q kind
                if words.len() != 5 || words[2] != "->" {
                    return Err(err(lineno, "malformed arc"));
                }
                let parse_port = |w: &str| -> Option<Port> {
                    let (a, b) = w.split_once('.')?;
                    Some(Port {
                        op: OpId(a.parse().ok()?),
                        port: b.parse().ok()?,
                    })
                };
                let from =
                    parse_port(words[1]).ok_or_else(|| err(lineno, "bad source port"))?;
                let to = parse_port(words[3]).ok_or_else(|| err(lineno, "bad dest port"))?;
                let kind = match words[4] {
                    "value" => ArcKind::Value,
                    "access" => ArcKind::Access,
                    _ => return Err(err(lineno, "bad arc kind")),
                };
                if from.op.index() >= g.len() || to.op.index() >= g.len() {
                    return Err(err(lineno, "arc references unknown op"));
                }
                g.connect(from, to, kind);
            }
            _ => return Err(err(lineno, "expected `op` or `arc`")),
        }
    }
    Ok(g)
}

/// Serialize a graph together with its variable table — a self-contained
/// module that can be reloaded and executed (`var` lines precede the
/// graph).
pub fn write_module(g: &Dfg, vars: &cf2df_cfg::VarTable) -> String {
    let mut s = String::from("dfg v1\n");
    for v in vars.ids() {
        match vars.kind(v) {
            cf2df_cfg::VarKind::Scalar => {
                let _ = writeln!(s, "var {} scalar {:?}", v.0, vars.name(v));
            }
            cf2df_cfg::VarKind::Array { len } => {
                let _ = writeln!(s, "var {} array {} {:?}", v.0, len, vars.name(v));
            }
        }
    }
    s.push_str(write_text(g).trim_start_matches("dfg v1\n"));
    s
}

/// Parse a module produced by [`write_module`].
///
/// Unlike [`read_text`] (which accepts any syntactically valid graph,
/// including deliberately incomplete fragments), a module is an
/// *executable* unit: the parsed graph is structurally validated so an
/// externally loaded graph can never reach the executor unchecked.
pub fn read_module(text: &str) -> Result<(Dfg, cf2df_cfg::VarTable), ParseError> {
    let mut vars = cf2df_cfg::VarTable::new();
    let mut graph_lines = vec!["dfg v1".to_owned()];
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        let words: Vec<&str> = line.split_whitespace().collect();
        if words.first() == Some(&"var") {
            let id: u32 = words
                .get(1)
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| ParseError {
                    line: lineno,
                    msg: "bad var id".into(),
                })?;
            if id as usize != vars.len() {
                return Err(ParseError {
                    line: lineno,
                    msg: "var ids must be dense and ordered".into(),
                });
            }
            let name = line.split_once('"').map(|x| x.1)
                .map(|r| r.trim_end_matches('"').to_owned())
                .ok_or_else(|| ParseError {
                    line: lineno,
                    msg: "missing quoted var name".into(),
                })?;
            match words.get(2) {
                Some(&"scalar") => {
                    vars.scalar(&name);
                }
                Some(&"array") => {
                    let len: u32 =
                        words.get(3).and_then(|w| w.parse().ok()).ok_or_else(|| {
                            ParseError {
                                line: lineno,
                                msg: "bad array length".into(),
                            }
                        })?;
                    vars.array(&name, len);
                }
                _ => {
                    return Err(ParseError {
                        line: lineno,
                        msg: "expected `scalar` or `array`".into(),
                    })
                }
            }
        } else if !(i == 0 && line == "dfg v1") {
            graph_lines.push(raw.to_owned());
        }
    }
    let g = read_text(&graph_lines.join("\n"))?;
    if let Err(errs) = crate::validate::validate(&g) {
        let rendered: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        return Err(ParseError {
            line: 0,
            msg: format!(
                "module graph failed validation ({} defect{}): {}",
                errs.len(),
                if errs.len() == 1 { "" } else { "s" },
                rendered.join("; ")
            ),
        });
    }
    Ok((g, vars))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dfg {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add_labeled(OpKind::Load { var: VarId(3) }, "x line");
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, -7);
        let st = g.add(OpKind::Store { var: VarId(3) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        g
    }

    fn graphs_equal(a: &Dfg, b: &Dfg) -> bool {
        if a.len() != b.len() || a.arc_count() != b.arc_count() {
            return false;
        }
        for op in a.op_ids() {
            if a.kind(op) != b.kind(op) || a.label(op) != b.label(op) {
                return false;
            }
            for p in 0..a.kind(op).n_inputs() {
                if a.imm(op, p) != b.imm(op, p) {
                    return false;
                }
            }
        }
        let (mut aa, mut ba) = (a.arcs().to_vec(), b.arcs().to_vec());
        let key = |x: &crate::graph::Arc| (x.from.op.0, x.from.port, x.to.op.0, x.to.port);
        aa.sort_by_key(key);
        ba.sort_by_key(key);
        aa == ba
    }

    #[test]
    fn round_trip_sample() {
        let g = sample();
        let text = write_text(&g);
        let g2 = read_text(&text).unwrap();
        assert!(graphs_equal(&g, &g2), "{text}");
        assert!(text.contains("imm1=-7"));
        assert!(text.contains("label \"x line\""));
    }

    #[test]
    fn round_trip_every_operator_kind() {
        let mut g = Dfg::new();
        g.add(OpKind::Start);
        g.add(OpKind::End { inputs: 3 });
        g.add(OpKind::Unary { op: UnOp::Neg });
        g.add(OpKind::Unary { op: UnOp::Not });
        for op in [
            BinOp::Add,
            BinOp::Rem,
            BinOp::Le,
            BinOp::Or,
            BinOp::Min,
            BinOp::Max,
        ] {
            g.add(OpKind::Binary { op });
        }
        g.add(OpKind::Switch);
        g.add(OpKind::Merge);
        g.add(OpKind::Synch { inputs: 4 });
        g.add(OpKind::Identity);
        g.add(OpKind::Gate);
        g.add(OpKind::Load { var: VarId(0) });
        g.add(OpKind::Store { var: VarId(1) });
        g.add(OpKind::LoadIdx { var: VarId(2) });
        g.add(OpKind::StoreIdx { var: VarId(3) });
        g.add(OpKind::IstLoad { var: VarId(4) });
        g.add(OpKind::IstStore { var: VarId(5) });
        g.add(OpKind::LoopEntry { loop_id: LoopId(0) });
        g.add(OpKind::LoopSwitch { loop_id: LoopId(4) });
        g.add(OpKind::LoopExit { loop_id: LoopId(1) });
        g.add(OpKind::PrevIter { loop_id: LoopId(2) });
        g.add(OpKind::IterIndex { loop_id: LoopId(3) });
        g.add(OpKind::Macro {
            inputs: 2,
            steps: vec![
                MacroStep::Bin(BinOp::Add, MacroSrc::In(0), MacroSrc::Imm(-7)),
                MacroStep::Un(UnOp::Neg, MacroSrc::Chain),
                MacroStep::Fwd(MacroSrc::In(1)),
                MacroStep::Zero,
            ],
        });
        let g2 = read_text(&write_text(&g)).unwrap();
        assert!(graphs_equal(&g, &g2));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_text("").is_err());
        assert!(read_text("nope").is_err());
        assert!(read_text("dfg v1\nop 5 start").is_err(), "non-dense ids");
        assert!(read_text("dfg v1\nop 0 nonsense").is_err());
        assert!(read_text("dfg v1\nop 0 start\narc 0.0 -> 9.0 value").is_err());
        assert!(read_text("dfg v1\nop 0 start\narc 0.0 2.0 value").is_err());
        let e = read_text("dfg v1\nop 0 start\nbogus line").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn module_round_trip_carries_vars() {
        let mut vars = cf2df_cfg::VarTable::new();
        vars.scalar("x");
        vars.array("buf", 16);
        let g = sample();
        let text = write_module(&g, &vars);
        let (g2, vars2) = read_module(&text).unwrap();
        assert!(graphs_equal(&g, &g2));
        assert_eq!(vars2.len(), 2);
        assert_eq!(vars2.name(cf2df_cfg::VarId(0)), "x");
        assert_eq!(
            vars2.kind(cf2df_cfg::VarId(1)),
            cf2df_cfg::VarKind::Array { len: 16 }
        );
    }

    #[test]
    fn module_rejects_structurally_invalid_graphs() {
        // An unfed load: fine for `read_text` (a fragment), rejected by
        // `read_module` (an executable unit).
        let text = "dfg v1\nop 0 start\nop 1 load 0\nop 2 end 1\narc 0.0 -> 2.0 access\n";
        assert!(read_text(text).is_ok());
        let e = read_module(text).unwrap_err();
        assert!(e.msg.contains("failed validation"), "{e}");
        assert!(e.msg.contains("unfed"), "{e}");
    }

    #[test]
    fn module_rejects_bad_vars() {
        assert!(read_module("dfg v1\nvar 1 scalar \"x\"").is_err());
        assert!(read_module("dfg v1\nvar 0 blob \"x\"").is_err());
        assert!(read_module("dfg v1\nvar 0 scalar x").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "dfg v1\n# a comment\n\nop 0 start  # trailing\nop 1 end 1\narc 0.0 -> 1.0 access\n";
        let g = read_text(text).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.arc_count(), 1);
    }
}
