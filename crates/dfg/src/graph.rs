//! The dataflow graph structure.

use crate::op::OpKind;
use crate::validate::DfgError;
use std::fmt;

/// A dense index identifying a dataflow operator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// The index as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// A port reference: operator plus port index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Port {
    /// The operator.
    pub op: OpId,
    /// Port index on that operator (input or output depending on context).
    pub port: u16,
}

impl Port {
    /// Construct a port reference.
    #[inline]
    pub fn new(op: OpId, port: usize) -> Port {
        Port {
            op,
            port: port as u16,
        }
    }
}

/// What an arc carries: a useful value, or a dummy access token used only
/// for sequencing memory operations (dotted in the paper's figures).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArcKind {
    /// Carries a meaningful value.
    Value,
    /// Carries a dummy synchronization token.
    Access,
}

/// A directed arc from an output port to an input port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Arc {
    /// Source output port.
    pub from: Port,
    /// Destination input port.
    pub to: Port,
    /// Value or access classification.
    pub kind: ArcKind,
}

#[derive(Clone, Debug)]
struct OpNode {
    kind: OpKind,
    /// One slot per input port; `Some(c)` marks the port as an immediate
    /// (literal) operand — no arc may feed it.
    imm: Vec<Option<i64>>,
    /// Optional human-readable annotation (e.g. which CFG statement or
    /// variable line the operator belongs to).
    label: String,
}

/// A dataflow program graph.
#[derive(Clone, Debug, Default)]
pub struct Dfg {
    ops: Vec<OpNode>,
    arcs: Vec<Arc>,
}

impl Dfg {
    /// An empty graph.
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The `OpId` a graph with `len` operators would assign next, or a
    /// typed error once the 32-bit id space is exhausted.
    pub fn op_id_for_len(len: usize) -> Result<OpId, DfgError> {
        u32::try_from(len)
            .map(OpId)
            .map_err(|_| DfgError::OpSpaceExhausted { ops: len })
    }

    /// Add an operator; all input ports start arc-fed (no immediates).
    /// Returns a typed error instead of aborting when the operator id
    /// space (`u32`) is exhausted.
    pub fn try_add(&mut self, kind: OpKind) -> Result<OpId, DfgError> {
        let id = Self::op_id_for_len(self.ops.len())?;
        let n_in = kind.n_inputs();
        self.ops.push(OpNode {
            kind,
            imm: vec![None; n_in],
            label: String::new(),
        });
        Ok(id)
    }

    /// Add an operator; all input ports start arc-fed (no immediates).
    ///
    /// # Panics
    ///
    /// Panics if the operator id space is exhausted; builders that must
    /// not panic use [`Dfg::try_add`].
    pub fn add(&mut self, kind: OpKind) -> OpId {
        self.try_add(kind).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Add an operator with a label.
    pub fn add_labeled(&mut self, kind: OpKind, label: impl Into<String>) -> OpId {
        let id = self.add(kind);
        self.ops[id.index()].label = label.into();
        id
    }

    /// Set an input port to an immediate operand.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range or merge-like.
    pub fn set_imm(&mut self, op: OpId, port: usize, value: i64) {
        assert!(
            !self.ops[op.index()].kind.is_merge_like(port),
            "merge-like ports cannot take immediates"
        );
        self.ops[op.index()].imm[port] = Some(value);
    }

    /// The immediate on an input port, if any.
    pub fn imm(&self, op: OpId, port: usize) -> Option<i64> {
        self.ops[op.index()].imm[port]
    }

    /// All immediate slots of an operator, one per input port (`None`
    /// means the port is fed by an arc). Export accessor for lowering
    /// to the machine's compiled representation.
    #[inline]
    pub fn imms(&self, op: OpId) -> &[Option<i64>] {
        &self.ops[op.index()].imm
    }

    /// The operator kind.
    #[inline]
    pub fn kind(&self, op: OpId) -> &OpKind {
        &self.ops[op.index()].kind
    }

    /// Replace an operator's kind. Input-port count must be preserved
    /// (used e.g. to retarget memory operations).
    pub fn set_kind(&mut self, op: OpId, kind: OpKind) {
        assert_eq!(
            self.ops[op.index()].kind.n_inputs(),
            kind.n_inputs(),
            "set_kind must preserve input arity"
        );
        self.ops[op.index()].kind = kind;
    }

    /// Replace an operator's kind, allowing the input arity to change.
    /// The new kind gets a fresh, fully arc-fed port layout (all
    /// immediate slots cleared). Used by graph rewrites that change port
    /// layouts (e.g. macro-op fusion, which bakes immediates into the
    /// micro-program); the caller must fix up the arcs afterwards.
    pub fn replace_kind(&mut self, op: OpId, kind: OpKind) {
        let n_in = kind.n_inputs();
        let node = &mut self.ops[op.index()];
        node.imm.clear();
        node.imm.resize(n_in, None);
        node.kind = kind;
    }

    /// The operator's label.
    pub fn label(&self, op: OpId) -> &str {
        &self.ops[op.index()].label
    }

    /// Replace an operator's label.
    pub fn set_label(&mut self, op: OpId, label: impl Into<String>) {
        self.ops[op.index()].label = label.into();
    }

    /// Connect `from` (an output port) to `to` (an input port).
    pub fn connect(&mut self, from: Port, to: Port, kind: ArcKind) {
        debug_assert!(
            (from.port as usize) < self.kind(from.op).n_outputs(),
            "output port out of range on {:?}",
            self.kind(from.op)
        );
        debug_assert!(
            (to.port as usize) < self.kind(to.op).n_inputs(),
            "input port out of range on {:?}",
            self.kind(to.op)
        );
        self.arcs.push(Arc { from, to, kind });
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Remove the first arc from `from` to `to`; returns whether one was
    /// found. Used by the §6 graph rewrites.
    pub fn disconnect(&mut self, from: Port, to: Port) -> bool {
        if let Some(i) = self
            .arcs
            .iter()
            .position(|a| a.from == from && a.to == to)
        {
            self.arcs.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Retarget every arc currently pointing at input port `old` to point
    /// at `new` instead; returns how many arcs moved.
    pub fn retarget_input(&mut self, old: Port, new: Port) -> usize {
        let mut n = 0;
        for a in &mut self.arcs {
            if a.to == old {
                a.to = new;
                n += 1;
            }
        }
        n
    }

    /// Re-source every arc currently leaving output port `old` to leave
    /// `new` instead; returns how many arcs moved.
    pub fn retarget_output(&mut self, old: Port, new: Port) -> usize {
        let mut n = 0;
        for a in &mut self.arcs {
            if a.from == old {
                a.from = new;
                n += 1;
            }
        }
        n
    }

    /// Rebuild the graph without *isolated* operators (no incident arcs,
    /// excluding `Start`/`End`). Returns the compacted graph and, for each
    /// old operator id, its new id (or `None` if removed). Graph rewrites
    /// that orphan operators call this to restore the validation invariant
    /// that every operator is fed and reachable.
    pub fn compact(&self) -> (Dfg, Vec<Option<OpId>>) {
        let mut touched = vec![false; self.ops.len()];
        for a in &self.arcs {
            touched[a.from.op.index()] = true;
            touched[a.to.op.index()] = true;
        }
        for (i, o) in self.ops.iter().enumerate() {
            if matches!(o.kind, OpKind::Start | OpKind::End { .. }) {
                touched[i] = true;
            }
        }
        let mut map: Vec<Option<OpId>> = vec![None; self.ops.len()];
        let mut out = Dfg::new();
        for (i, o) in self.ops.iter().enumerate() {
            if touched[i] {
                let id = out.add_labeled(o.kind.clone(), o.label.clone());
                for (p, imm) in o.imm.iter().enumerate() {
                    if let Some(c) = imm {
                        out.set_imm(id, p, *c);
                    }
                }
                map[i] = Some(id);
            }
        }
        for a in &self.arcs {
            let from = Port {
                op: map[a.from.op.index()].expect("touched"),
                port: a.from.port,
            };
            let to = Port {
                op: map[a.to.op.index()].expect("touched"),
                port: a.to.port,
            };
            out.connect(from, to, a.kind);
        }
        (out, map)
    }

    /// Iterate over all operator ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Find the unique operator of a kind matching `pred`, if any.
    pub fn find(&self, mut pred: impl FnMut(&OpKind) -> bool) -> Option<OpId> {
        let mut found = None;
        for id in self.op_ids() {
            if pred(self.kind(id)) {
                if found.is_some() {
                    return None;
                }
                found = Some(id);
            }
        }
        found
    }

    /// The unique `Start` operator, or a [`DfgError::StartCount`] carrying
    /// the actual count. Graphs loaded from external sources hit this
    /// path, so it must not panic.
    pub fn start(&self) -> Result<OpId, DfgError> {
        match self.find(|k| matches!(k, OpKind::Start)) {
            Some(id) => Ok(id),
            None => {
                let n = self
                    .op_ids()
                    .filter(|&o| matches!(self.kind(o), OpKind::Start))
                    .count();
                Err(DfgError::StartCount(n))
            }
        }
    }

    /// The unique `End` operator, or a [`DfgError::EndCount`] carrying the
    /// actual count.
    pub fn end(&self) -> Result<OpId, DfgError> {
        match self.find(|k| matches!(k, OpKind::End { .. })) {
            Some(id) => Ok(id),
            None => {
                let n = self
                    .op_ids()
                    .filter(|&o| matches!(self.kind(o), OpKind::End { .. }))
                    .count();
                Err(DfgError::EndCount(n))
            }
        }
    }

    /// Incoming arcs of each operator, indexed by destination port:
    /// `result[op][port]` = arc indices.
    pub fn in_arcs(&self) -> Vec<Vec<Vec<usize>>> {
        let mut out: Vec<Vec<Vec<usize>>> = self
            .ops
            .iter()
            .map(|o| vec![Vec::new(); o.kind.n_inputs()])
            .collect();
        for (i, a) in self.arcs.iter().enumerate() {
            out[a.to.op.index()][a.to.port as usize].push(i);
        }
        out
    }

    /// Outgoing arcs of each operator, indexed by source port.
    pub fn out_arcs(&self) -> Vec<Vec<Vec<usize>>> {
        let mut out: Vec<Vec<Vec<usize>>> = self
            .ops
            .iter()
            .map(|o| vec![Vec::new(); o.kind.n_outputs()])
            .collect();
        for (i, a) in self.arcs.iter().enumerate() {
            out[a.from.op.index()][a.from.port as usize].push(i);
        }
        out
    }

    /// Pretty-print the whole graph, one operator per line.
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let outs = self.out_arcs();
        for id in self.op_ids() {
            let o = &self.ops[id.index()];
            let mut dests = Vec::new();
            for (p, arcs) in outs[id.index()].iter().enumerate() {
                for &ai in arcs {
                    let a = &self.arcs[ai];
                    let style = match a.kind {
                        ArcKind::Value => "",
                        ArcKind::Access => "~",
                    };
                    dests.push(format!("{p}{style}>{:?}.{}", a.to.op, a.to.port));
                }
            }
            let imms: Vec<String> = o
                .imm
                .iter()
                .enumerate()
                .filter_map(|(p, i)| i.map(|v| format!("#{p}={v}")))
                .collect();
            let _ = writeln!(
                s,
                "{:>6?} {:<22} {:<14} {} {}",
                id,
                o.kind.mnemonic(),
                imms.join(" "),
                o.label,
                dests.join(" ")
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{BinOp, VarId};

    fn tiny() -> (Dfg, OpId, OpId, OpId, OpId) {
        // start → load x → (+1) → store x → end
        let mut g = Dfg::new();
        let start = g.add(OpKind::Start);
        let load = g.add(OpKind::Load { var: VarId(0) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 1);
        let store = g.add(OpKind::Store { var: VarId(0) });
        let end = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(start, 0), Port::new(load, 0), ArcKind::Access);
        g.connect(Port::new(load, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(store, 0), ArcKind::Value);
        g.connect(Port::new(load, 1), Port::new(store, 1), ArcKind::Access);
        g.connect(Port::new(store, 0), Port::new(end, 0), ArcKind::Access);
        (g, start, load, add, store)
    }

    #[test]
    fn build_and_query() {
        let (g, start, load, add, store) = tiny();
        assert_eq!(g.len(), 5);
        assert_eq!(g.arc_count(), 5);
        assert_eq!(g.start(), Ok(start));
        assert_eq!(g.imm(add, 1), Some(1));
        assert_eq!(g.imm(add, 0), None);
        assert!(matches!(g.kind(load), OpKind::Load { .. }));
        let _ = store;
    }

    #[test]
    fn in_and_out_arcs_indexed_by_port() {
        let (g, _, load, add, store) = tiny();
        let ins = g.in_arcs();
        let outs = g.out_arcs();
        // store has value on port 0 and access on port 1.
        assert_eq!(ins[store.index()][0].len(), 1);
        assert_eq!(ins[store.index()][1].len(), 1);
        // load output port 0 (value) feeds add; port 1 (access) feeds store.
        assert_eq!(outs[load.index()][0].len(), 1);
        assert_eq!(outs[load.index()][1].len(), 1);
        let a = g.arcs()[outs[load.index()][1][0]];
        assert_eq!(a.to.op, store);
        assert_eq!(a.kind, ArcKind::Access);
        let _ = add;
    }

    #[test]
    #[should_panic(expected = "merge-like")]
    fn imm_on_merge_port_panics() {
        let mut g = Dfg::new();
        let m = g.add(OpKind::Merge);
        g.set_imm(m, 0, 3);
    }

    #[test]
    fn find_unique_rejects_duplicates() {
        let mut g = Dfg::new();
        g.add(OpKind::Start);
        g.add(OpKind::Start);
        assert!(g.find(|k| matches!(k, OpKind::Start)).is_none());
    }

    #[test]
    fn start_end_report_actual_counts() {
        let g = Dfg::new();
        assert_eq!(g.start(), Err(DfgError::StartCount(0)));
        assert_eq!(g.end(), Err(DfgError::EndCount(0)));
        let mut g = Dfg::new();
        g.add(OpKind::Start);
        g.add(OpKind::Start);
        g.add(OpKind::End { inputs: 1 });
        assert_eq!(g.start(), Err(DfgError::StartCount(2)));
        assert_eq!(g.end(), Ok(OpId(2)));
    }

    #[test]
    fn op_id_space_exhaustion_is_typed() {
        assert_eq!(Dfg::op_id_for_len(0), Ok(OpId(0)));
        assert_eq!(Dfg::op_id_for_len(u32::MAX as usize), Ok(OpId(u32::MAX)));
        let over = (u32::MAX as usize) + 1;
        assert_eq!(
            Dfg::op_id_for_len(over),
            Err(DfgError::OpSpaceExhausted { ops: over })
        );
    }

    #[test]
    fn labels_and_pretty() {
        let mut g = Dfg::new();
        let s = g.add_labeled(OpKind::Start, "the source");
        assert_eq!(g.label(s), "the source");
        let (g2, ..) = tiny();
        let p = g2.pretty();
        assert_eq!(p.lines().count(), g2.len());
        assert!(p.contains("#1=1"), "immediate rendered: {p}");
        assert!(p.contains("~>"), "access arcs rendered dotted-ish");
    }

    #[test]
    fn compact_drops_isolated_ops_and_remaps() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let dead = g.add(OpKind::Identity); // never connected
        let id = g.add_labeled(OpKind::Identity, "live");
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(id, 0), ArcKind::Access);
        g.connect(Port::new(id, 0), Port::new(e, 0), ArcKind::Access);
        let (c, map) = g.compact();
        assert_eq!(c.len(), 3);
        assert_eq!(map[dead.index()], None);
        let new_id = map[id.index()].unwrap();
        assert_eq!(c.label(new_id), "live");
        assert_eq!(c.arc_count(), 2);
        crate::validate::validate(&c).unwrap();
    }

    #[test]
    fn compact_preserves_start_end_and_imms() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let st = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st, 0, 42);
        let e = g.add(OpKind::End { inputs: 1 });
        g.add(OpKind::Merge); // isolated merge: dropped
        g.connect(Port::new(s, 0), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        let (c, map) = g.compact();
        assert_eq!(c.len(), 3);
        let new_st = map[st.index()].unwrap();
        assert_eq!(c.imm(new_st, 0), Some(42));
        // Start/End always survive, even if somehow isolated.
        let mut g2 = Dfg::new();
        g2.add(OpKind::Start);
        g2.add(OpKind::End { inputs: 1 });
        let (c2, _) = g2.compact();
        assert_eq!(c2.len(), 2);
    }

    #[test]
    fn disconnect_and_retarget() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let a = g.add(OpKind::Identity);
        let b = g.add(OpKind::Identity);
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(a, 0), ArcKind::Access);
        g.connect(Port::new(a, 0), Port::new(e, 0), ArcKind::Access);
        // Retarget the arc into `a` to `b` instead.
        assert_eq!(g.retarget_input(Port::new(a, 0), Port::new(b, 0)), 1);
        assert!(g.disconnect(Port::new(a, 0), Port::new(e, 0)));
        assert!(!g.disconnect(Port::new(a, 0), Port::new(e, 0)), "already gone");
        g.connect(Port::new(b, 0), Port::new(e, 0), ArcKind::Access);
        let (c, map) = g.compact();
        assert_eq!(map[a.index()], None, "a became isolated");
        assert_eq!(c.len(), 3);
        crate::validate::validate(&c).unwrap();
    }

    #[test]
    fn set_kind_preserving_arity() {
        let mut g = Dfg::new();
        let l = g.add(OpKind::Load { var: VarId(0) });
        g.set_kind(l, OpKind::Load { var: VarId(1) });
        assert!(matches!(g.kind(l), OpKind::Load { var: VarId(1) }));
    }
}
