//! Static translation validation: abstract token-rate analysis.
//!
//! The structural checks in [`crate::validate`] only ensure every port is
//! wired; they say nothing about *how many* tokens an arc carries. The
//! paper's correctness argument rests on token linearity: in every tag
//! context that reaches an operator, each input arc delivers exactly one
//! token per activation. This module proves that property abstractly.
//!
//! ## The abstraction
//!
//! Each output port is assigned a *context set*: a set of [`Cube`]s, each
//! describing one family of tag contexts in which the port emits exactly
//! one token. A cube records
//!
//! - the loop tags held (`λ` markers, keyed by [`cf2df_cfg::LoopId`] so the
//!   per-line loop-entry operators of one loop unify), and
//! - the switch guards taken (keyed by the *predicate source port*, so the
//!   per-line switches of one fork unify).
//!
//! `Start` emits in the single empty context. Switches refine contexts by
//! an arm guard; merges union contexts and cancel complete sibling sets
//! (all arms of one guard present with the same residue); loop entries add
//! a `λ`, loop exits strip it together with every guard introduced inside
//! the loop. Strict (rendezvous) operators require all arc-fed inputs to
//! carry *canonically equal* context sets — a mismatch means some context
//! gets a token on one port and not the other, i.e. an arc provably
//! carries 0 or ≥ 2 tokens per activation.
//!
//! Cycles must be gated: the only arcs allowed to close a cycle are those
//! into a loop-entry's backedge port or a `PrevIter` input (the Fig 14
//! cross-iteration chain). Everything else is evaluated in one topological
//! pass; a residual cycle is reported as ungated.
//!
//! ## What this does and does not prove
//!
//! The analysis is relative: it trusts that each switch's arms partition
//! every tag context (the predicate produces one boolean per context) and
//! that a loop's controlling predicate eventually selects the exit arm
//! exactly once per entry. Under those assumptions, a clean report means
//! every arc carries exactly one token per activation in its context, all
//! loop tags are stripped before `End`, and no merge can receive two
//! tokens under one tag. It does *not* prove termination, nor deadness of
//! arms under constant predicates beyond immediate-operand switches.

use crate::graph::{Dfg, OpId, Port};
use crate::op::OpKind;
use crate::validate::{validate, DfgError};
use cf2df_cfg::LoopId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifies the branching decision a guard was introduced by.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum GuardKey {
    /// A switch whose predicate input is fed from this output port. All
    /// per-line switches of one fork share the predicate value, so they
    /// refine contexts identically.
    Pred(Port),
    /// Which of a multi-exit loop's exit sites the activation's single
    /// exit token left through. A loop with `break`-style early exits has
    /// several exit sites; exactly one fires per activation, so their
    /// post-loop contexts are disjoint arms of this guard.
    Exit(LoopId),
}

impl fmt::Display for GuardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardKey::Pred(p) => write!(f, "pred({:?}.{})", p.op, p.port),
            GuardKey::Exit(l) => write!(f, "exit(L{})", l.0),
        }
    }
}

/// One family of tag contexts delivering exactly one token.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Cube {
    /// Loop tags held (`λ` markers).
    pub loops: BTreeSet<LoopId>,
    /// Guards taken: key → `(arm, arms)`.
    pub guards: BTreeMap<GuardKey, (u16, u16)>,
    /// The token's multiplicity in this context is mediated by a
    /// cross-iteration (`PrevIter`) chain: exactly one per iteration
    /// overall, but which iteration is decided dynamically. Ignored for
    /// rendezvous identity.
    pub crossiter: bool,
}

impl Cube {
    fn unit() -> Cube {
        Cube {
            loops: BTreeSet::new(),
            guards: BTreeMap::new(),
            crossiter: false,
        }
    }

    /// Do the cubes carry contradictory guards (a shared key with
    /// different arms)? Conflicting cubes never describe the same context.
    pub fn conflicts(&self, other: &Cube) -> bool {
        self.guards.iter().any(|(k, &(arm, _))| {
            other.guards.get(k).is_some_and(|&(o_arm, _)| o_arm != arm)
        })
    }

    /// Identity used for rendezvous: loops + guards, ignoring `crossiter`.
    fn same_context(&self, other: &Cube) -> bool {
        self.loops == other.loops && self.guards == other.guards
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for l in &self.loops {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "λ{}", l.0)?;
            first = false;
        }
        for (k, (arm, arms)) in &self.guards {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={arm}/{arms}")?;
            first = false;
        }
        if self.crossiter {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "×iter")?;
        }
        let _ = first;
        write!(f, "}}")
    }
}

/// A canonical set of cubes (the abstract context of a port).
pub type CubeSet = BTreeSet<Cube>;

fn render_set(s: &CubeSet) -> String {
    if s.is_empty() {
        return "∅".into();
    }
    s.iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(" ∪ ")
}

/// The class of a certification defect (machine-readable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DefectKind {
    /// A structural defect from [`crate::validate`].
    Structural,
    /// A cycle not gated by loop-entry/`PrevIter` operators.
    UngatedCycle,
    /// Strict input ports of one operator carry different context sets:
    /// some context delivers 0 or ≥ 2 tokens to a rendezvous.
    RateMismatch,
    /// Two arcs into one merge-like port can deliver tokens under the same
    /// tag context (≥ 2 tokens per activation).
    MergeCollision,
    /// A strict input port never receives a token while a sibling port
    /// does: the operator can never fire and the live tokens leak.
    DeadInput,
    /// A backedge token is not gated by any in-loop guard (the loop could
    /// never take its exit arm) or lacks the loop's tag.
    UnguardedBackedge,
    /// A loop-exit input does not contradict the loop's backedge guard:
    /// the exit would fire on iterations that also continue.
    UngatedLoopExit,
    /// A loop tag survives to `End` (a loop-exit operator is missing).
    TagLeak,
    /// `End` fires only under some guard: conditional termination.
    ConditionalEnd,
    /// Two exit contexts collapse to the same outer context after tag
    /// stripping: ≥ 2 tokens leave the loop per entry.
    DuplicateAfterExit,
    /// A loop-exit or `PrevIter` input lacks the loop's `λ` tag.
    MissingLoopTag,
    /// Some iteration context neither re-enters the loop via the backedge
    /// nor reaches an exit: the loop entry stalls waiting for a token that
    /// never arrives.
    BackedgeGap,
    /// A `PrevIter` operator used outside the Fig 14 pattern (output must
    /// feed only merge ports; input must be tagged and guarded).
    PrevIterMisuse,
    /// A switch arm that can receive tokens has no outgoing arc: every
    /// token routed to it is silently dropped, starving whichever
    /// rendezvous its route was supposed to feed.
    DroppedToken,
}

impl DefectKind {
    /// Stable lower-kebab name for machine-readable reports.
    pub fn name(self) -> &'static str {
        match self {
            DefectKind::Structural => "structural",
            DefectKind::UngatedCycle => "ungated-cycle",
            DefectKind::RateMismatch => "rate-mismatch",
            DefectKind::MergeCollision => "merge-collision",
            DefectKind::DeadInput => "dead-input",
            DefectKind::UnguardedBackedge => "unguarded-backedge",
            DefectKind::UngatedLoopExit => "ungated-loop-exit",
            DefectKind::TagLeak => "tag-leak",
            DefectKind::ConditionalEnd => "conditional-end",
            DefectKind::DuplicateAfterExit => "duplicate-after-exit",
            DefectKind::MissingLoopTag => "missing-loop-tag",
            DefectKind::BackedgeGap => "backedge-gap",
            DefectKind::PrevIterMisuse => "prev-iter-misuse",
            DefectKind::DroppedToken => "dropped-token",
        }
    }
}

/// A certification defect, anchored at an operator with a path witness
/// from `Start` (the token route along which the violation manifests).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Defect {
    /// The defect class.
    pub kind: DefectKind,
    /// The operator the defect is anchored at (absent for whole-graph
    /// defects such as a missing `Start`).
    pub op: Option<OpId>,
    /// Human-readable explanation including the abstract contexts.
    pub detail: String,
    /// Operators on a path from `Start` to `op`, inclusive; empty when no
    /// anchor exists or the anchor is unreachable.
    pub witness: Vec<OpId>,
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind.name())?;
        if let Some(op) = self.op {
            write!(f, " at {op:?}")?;
        }
        write!(f, ": {}", self.detail)?;
        if !self.witness.is_empty() {
            write!(f, "\n    witness: ")?;
            for (i, op) in self.witness.iter().enumerate() {
                if i > 0 {
                    write!(f, " → ")?;
                }
                write!(f, "{op:?}")?;
            }
        }
        Ok(())
    }
}

/// The result of the token-rate analysis: per-operator firing contexts,
/// defects, and the gated dependence structure (for ordering queries).
pub struct Analysis {
    /// Firing context of each operator (empty set = provably dead).
    firing: Vec<CubeSet>,
    /// Context of each output port: `out_ctx[op][port]`.
    out_ctx: Vec<Vec<CubeSet>>,
    /// Forward adjacency over non-cut arcs (cycle-free).
    adj: Vec<Vec<OpId>>,
    /// Forward adjacency over ALL arcs, backedges included (may be cyclic).
    full_adj: Vec<Vec<OpId>>,
    /// Memoized reachability frontiers, one bitmap per queried source
    /// (conservation checks ask about every conflicting memory pair, so
    /// sources repeat heavily).
    reach_memo: std::cell::RefCell<BTreeMap<OpId, Vec<bool>>>,
    /// All defects found, in discovery order.
    pub defects: Vec<Defect>,
}

impl Analysis {
    /// The abstract firing context of an operator.
    pub fn firing(&self, op: OpId) -> &CubeSet {
        &self.firing[op.index()]
    }

    /// The abstract context of an output port.
    pub fn out_ctx(&self, p: Port) -> &CubeSet {
        &self.out_ctx[p.op.index()][p.port as usize]
    }

    /// Can operators `a` and `b` both fire within one execution trace
    /// (no pair of firing cubes carries contradictory guards)?
    pub fn may_cooccur(&self, a: OpId, b: OpId) -> bool {
        let (fa, fb) = (&self.firing[a.index()], &self.firing[b.index()]);
        if fa.is_empty() || fb.is_empty() {
            return false;
        }
        fa.iter().any(|ca| fb.iter().any(|cb| !ca.conflicts(cb)))
    }

    /// Is there a directed path from `a` to `b` over any arcs, backedges
    /// included? Once token linearity holds, every arc is a happens-before
    /// edge for the firings it connects — a store whose ordering flows
    /// through a loop backedge (store in iteration *i* precedes iteration
    /// *i+1*, which precedes the exit) is still ordered before whatever
    /// consumes the circulating token after the loop. Operators on parallel
    /// unsynchronized branches have no path in either direction.
    pub fn reaches(&self, a: OpId, b: OpId) -> bool {
        if a == b {
            return true;
        }
        let mut memo = self.reach_memo.borrow_mut();
        let seen = memo.entry(a).or_insert_with(|| {
            let mut seen = vec![false; self.full_adj.len()];
            let mut stack = vec![a];
            while let Some(v) = stack.pop() {
                for &s in &self.full_adj[v.index()] {
                    if !seen[s.index()] {
                        seen[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
            seen
        });
        seen[b.index()]
    }
}

/// Certify a graph: structural validation plus the token-rate analysis.
/// Returns every defect found (an empty error list never occurs).
pub fn certify(g: &Dfg) -> Result<(), Vec<Defect>> {
    let a = analyze(g);
    if a.defects.is_empty() {
        Ok(())
    } else {
        Err(a.defects)
    }
}

/// Run the full analysis, returning contexts alongside any defects. If
/// structural validation fails, the rate analysis is skipped (its
/// preconditions do not hold) and only structural defects are reported.
pub fn analyze(g: &Dfg) -> Analysis {
    let mut an = Analysis {
        firing: vec![CubeSet::new(); g.len()],
        out_ctx: g
            .op_ids()
            .map(|o| vec![CubeSet::new(); g.kind(o).n_outputs()])
            .collect(),
        adj: vec![Vec::new(); g.len()],
        reach_memo: std::cell::RefCell::new(BTreeMap::new()),
        full_adj: vec![Vec::new(); g.len()],
        defects: Vec::new(),
    };

    if let Err(errs) = validate(g) {
        let witnesses = Witnesses::new(g);
        for e in errs {
            let op = match e {
                DfgError::StartCount(_)
                | DfgError::EndCount(_)
                | DfgError::OpSpaceExhausted { .. } => None,
                DfgError::UnfedInput(op, _)
                | DfgError::MultiplyFedInput(op, _)
                | DfgError::ArcIntoImmediate(op, _)
                | DfgError::AllImmediate(op)
                | DfgError::Unreachable(op) => Some(op),
            };
            an.defects.push(Defect {
                kind: DefectKind::Structural,
                op,
                detail: e.to_string(),
                witness: op.map(|o| witnesses.path_to(o)).unwrap_or_default(),
            });
        }
        return an;
    }

    let ins = g.in_arcs();
    let arcs = g.arcs();

    // Cut arcs: the only arcs allowed to close cycles.
    let cut: Vec<bool> = arcs
        .iter()
        .map(|a| match g.kind(a.to.op) {
            OpKind::LoopEntry { .. } | OpKind::LoopSwitch { .. } => a.to.port == 1,
            OpKind::PrevIter { .. } => true,
            _ => false,
        })
        .collect();

    // Forward adjacency and in-degrees over non-cut arcs, plus the full
    // (possibly cyclic) adjacency used for happens-before queries.
    let mut indeg = vec![0usize; g.len()];
    for (i, a) in arcs.iter().enumerate() {
        an.full_adj[a.from.op.index()].push(a.to.op);
        if !cut[i] {
            an.adj[a.from.op.index()].push(a.to.op);
            indeg[a.to.op.index()] += 1;
        }
    }

    // Kahn topological sort; a residue is an ungated cycle.
    let mut order = Vec::with_capacity(g.len());
    let mut queue: Vec<OpId> = g.op_ids().filter(|o| indeg[o.index()] == 0).collect();
    while let Some(v) = queue.pop() {
        order.push(v);
        for &s in &an.adj[v.index()] {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != g.len() {
        let cycle: Vec<OpId> = g.op_ids().filter(|o| indeg[o.index()] > 0).collect();
        let names: Vec<String> = cycle
            .iter()
            .take(8)
            .map(|&o| format!("{o:?}:{}", g.kind(o).mnemonic()))
            .collect();
        an.defects.push(Defect {
            kind: DefectKind::UngatedCycle,
            op: cycle.first().copied(),
            detail: format!(
                "cycle of {} operators not gated by loop entry/exit: {}",
                cycle.len(),
                names.join(" ")
            ),
            witness: cycle,
        });
        return an;
    }

    // Per-guard-key loop sets: the loops active when the guard's switch
    // fired. Loop exits strip exactly the guards introduced inside them.
    let mut guard_loops: BTreeMap<GuardKey, BTreeSet<LoopId>> = BTreeMap::new();

    // Exit sites: group each loop's exit operators by the fork arm feeding
    // them — all per-line switches of one fork share a predicate port, so
    // the (predicate, arm) pair identifies the site. An exit fed by an
    // inner loop's exit (a break chained out of a nested loop) inherits
    // the inner exit's site identity, which is likewise shared across
    // lines. A loop with k ≥ 2 sites (break-style early exits) delivers
    // its single exit token to exactly one of them per activation; exit
    // outputs are tagged with an exit-choice guard so the sites'
    // post-loop contexts are disjoint.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum SiteKey {
        Arm(Port, u16),
        Inner(LoopId, u16),
        Other,
    }
    // Assigns (memoized) the site arm of one loop-exit operator. Chains of
    // exits are acyclic (the non-cut graph is a DAG here), so the
    // recursion for the `Inner` case terminates.
    fn exit_site(
        g: &Dfg,
        ins: &[Vec<Vec<usize>>],
        arcs: &[crate::graph::Arc],
        interned: &mut BTreeMap<(LoopId, SiteKey), u16>,
        counts: &mut BTreeMap<LoopId, u16>,
        site_of: &mut BTreeMap<OpId, u16>,
        op: OpId,
        loop_id: LoopId,
    ) -> u16 {
        if let Some(&a) = site_of.get(&op) {
            return a;
        }
        let key = ins[op.index()]
            .first()
            .and_then(|v| v.first())
            .map(|&ai| {
                let src = arcs[ai].from;
                match *g.kind(src.op) {
                    OpKind::Switch | OpKind::CaseSwitch { .. }
                        if g.imm(src.op, 1).is_none() =>
                    {
                        let pred = arcs[ins[src.op.index()][1][0]].from;
                        SiteKey::Arm(pred, src.port)
                    }
                    // A fused loop-entry/switch steers by the same
                    // predicate its unfused switch did, so the (predicate,
                    // arm) pair still identifies the site — fused and
                    // unfused exits of one fork unify.
                    OpKind::LoopSwitch { .. } if g.imm(src.op, 2).is_none() => {
                        let pred = arcs[ins[src.op.index()][2][0]].from;
                        SiteKey::Arm(pred, src.port)
                    }
                    OpKind::LoopExit { loop_id: inner } => {
                        let inner_arm =
                            exit_site(g, ins, arcs, interned, counts, site_of, src.op, inner);
                        SiteKey::Inner(inner, inner_arm)
                    }
                    _ => SiteKey::Other,
                }
            })
            .unwrap_or(SiteKey::Other);
        let n = counts.entry(loop_id).or_insert(0);
        let arm = *interned.entry((loop_id, key)).or_insert_with(|| {
            let a = *n;
            *n += 1;
            a
        });
        site_of.insert(op, arm);
        arm
    }
    let mut site_of: BTreeMap<OpId, u16> = BTreeMap::new();
    let mut sites_of_loop: BTreeMap<LoopId, u16> = BTreeMap::new();
    {
        let mut interned: BTreeMap<(LoopId, SiteKey), u16> = BTreeMap::new();
        for op in g.op_ids() {
            let OpKind::LoopExit { loop_id } = *g.kind(op) else {
                continue;
            };
            exit_site(
                g,
                &ins,
                arcs,
                &mut interned,
                &mut sites_of_loop,
                &mut site_of,
                op,
                loop_id,
            );
        }
    }
    // Contexts consumed into a Fig 14 cross-iteration chain (the cubes a
    // merge with a `PrevIter` arc receives, pre-weakening). These count as
    // exit consumption for the backedge-coverage check below.
    let mut chain_feed: BTreeMap<LoopId, Vec<Cube>> = BTreeMap::new();
    let witnesses = Witnesses::new(g);
    let defect = |kind, op: OpId, detail: String| Defect {
        kind,
        op: Some(op),
        detail,
        witness: witnesses.path_to(op),
    };
    let mut defects = Vec::new();

    // Loops whose exit sites are genuine alternatives — every pair of
    // sites has pairwise-conflicting in-loop contexts, so exactly one
    // site's exit fires per activation (binsearch-style breaks). Non-
    // alternative multi-exit loops (a Fig 14 chain exit fires alongside
    // the value exits every activation) get no exit-choice guard.
    // Exclusivity needs the sites' evaluated contexts, and an inner
    // loop's exit-choice guard can be what makes an outer loop's sites
    // conflict, so the evaluation iterates: each round re-evaluates with
    // the guards found so far and may discover more exclusive loops. Only
    // the final round's defects are kept. The set only grows, so this
    // terminates within #loops + 1 rounds.
    let mut exclusive_exit: BTreeSet<LoopId> = BTreeSet::new();
    loop {
        for &op in &order {
            let kind = g.kind(op).clone();
            // Context of a strict (single-arc) input port; `None` for
            // immediate ports.
            let port_ctx = |an: &Analysis, p: usize| -> Option<CubeSet> {
                if g.imm(op, p).is_some() {
                    return None;
                }
                let arcs_in = &ins[op.index()][p];
                debug_assert_eq!(arcs_in.len(), 1, "strict port has exactly one arc");
                let a = &arcs[arcs_in[0]];
                Some(an.out_ctx[a.from.op.index()][a.from.port as usize].clone())
            };
            // Rendezvous of all arc-fed strict ports; reports mismatches.
            let rendezvous = |an: &Analysis, defects: &mut Vec<Defect>, ports: &[usize]| -> CubeSet {
                let mut fed: Vec<(usize, CubeSet)> = Vec::new();
                for &p in ports {
                    if let Some(c) = port_ctx(an, p) {
                        fed.push((p, c));
                    }
                }
                let Some((p0, first)) = fed.first().cloned() else {
                    return CubeSet::new();
                };
                let mut result = first.clone();
                for (p, c) in fed.iter().skip(1) {
                    if c.is_empty() != first.is_empty() {
                        let (dead, live) = if c.is_empty() { (*p, p0) } else { (p0, *p) };
                        defects.push(defect(
                            DefectKind::DeadInput,
                            op,
                            format!(
                                "input port {dead} never receives a token while port {live} \
                                 receives {}: tokens leak at the rendezvous",
                                render_set(if c.is_empty() { &first } else { c })
                            ),
                        ));
                    } else if !same_contexts(c, &first) {
                        defects.push(defect(
                            DefectKind::RateMismatch,
                            op,
                            format!(
                                "input port {p0} receives {} but port {p} receives {}: some \
                                 context delivers 0 or ≥2 tokens",
                                render_set(&first),
                                render_set(c)
                            ),
                        ));
                    } else {
                        result = merge_crossiter(&result, c);
                    }
                }
                result
            };
            // Union of a merge-like port's arcs with a collision check.
            // `PrevIter` arcs are excluded: they trigger cross-iteration
            // weakening of the result instead of contributing contexts.
            let merge_union = |an: &Analysis, defects: &mut Vec<Defect>, port: usize| -> CubeSet {
                let mut cubes: Vec<(usize, Cube)> = Vec::new();
                for &ai in &ins[op.index()][port] {
                    let a = &arcs[ai];
                    if matches!(g.kind(a.from.op), OpKind::PrevIter { .. }) {
                        continue;
                    }
                    for c in &an.out_ctx[a.from.op.index()][a.from.port as usize] {
                        cubes.push((ai, c.clone()));
                    }
                }
                for i in 0..cubes.len() {
                    for (aj, cj) in cubes.iter().skip(i + 1) {
                        let (ai, ci) = &cubes[i];
                        if ai != aj
                            && ci.loops == cj.loops
                            && !ci.conflicts(cj)
                            && !(ci.crossiter || cj.crossiter)
                        {
                            defects.push(defect(
                                DefectKind::MergeCollision,
                                op,
                                format!(
                                    "arcs from {:?}.{} and {:?}.{} can both deliver under \
                                     {} ∩ {}",
                                    arcs[*ai].from.op,
                                    arcs[*ai].from.port,
                                    arcs[*aj].from.op,
                                    arcs[*aj].from.port,
                                    ci,
                                    cj
                                ),
                            ));
                        }
                    }
                }
                let set: CubeSet = cubes.into_iter().map(|(_, c)| c).collect();
                reduce(set)
            };

            match kind {
                OpKind::Start => {
                    an.firing[op.index()] = std::iter::once(Cube::unit()).collect();
                    an.out_ctx[op.index()][0] = an.firing[op.index()].clone();
                }
                OpKind::End { inputs } => {
                    let unit: CubeSet = std::iter::once(Cube::unit()).collect();
                    for p in 0..inputs as usize {
                        let Some(c) = port_ctx(&an, p) else { continue };
                        if c.is_empty() {
                            defects.push(defect(
                                DefectKind::DeadInput,
                                op,
                                format!("End port {p} never receives a token: no termination"),
                            ));
                            continue;
                        }
                        for cube in &c {
                            if !cube.loops.is_empty() {
                                defects.push(defect(
                                    DefectKind::TagLeak,
                                    op,
                                    format!(
                                        "End port {p} receives {cube}: loop tags survive to \
                                         End (missing loop-exit)"
                                    ),
                                ));
                            } else if !cube.guards.is_empty() {
                                defects.push(defect(
                                    DefectKind::ConditionalEnd,
                                    op,
                                    format!(
                                        "End port {p} receives {cube}: termination is \
                                         conditional on a guard"
                                    ),
                                ));
                            }
                        }
                    }
                    an.firing[op.index()] = unit;
                }
                OpKind::Merge => {
                    let pi_loops: BTreeSet<LoopId> = ins[op.index()][0]
                        .iter()
                        .filter_map(|&ai| match *g.kind(arcs[ai].from.op) {
                            OpKind::PrevIter { loop_id } => Some(loop_id),
                            _ => None,
                        })
                        .collect();
                    let set = merge_union(&an, &mut defects, 0);
                    for &lid in &pi_loops {
                        chain_feed
                            .entry(lid)
                            .or_default()
                            .extend(set.iter().cloned());
                    }
                    let out = pi_loops.iter().fold(set, |s, &lid| {
                        weaken_crossiter(&s, lid, &guard_loops)
                    });
                    an.firing[op.index()] = out.clone();
                    an.out_ctx[op.index()][0] = out;
                }
                OpKind::LoopEntry { loop_id } => {
                    // Port 1 (backedge) is cut: checked in the post-pass.
                    let r0 = merge_union(&an, &mut defects, 0);
                    let out: CubeSet = r0
                        .iter()
                        .map(|c| {
                            let mut c = c.clone();
                            c.loops.insert(loop_id);
                            c
                        })
                        .collect();
                    an.firing[op.index()] = out.clone();
                    an.out_ctx[op.index()][0] = out;
                }
                OpKind::LoopSwitch { loop_id } => {
                    // Fused loop-entry/switch. The entry side (port 0,
                    // merge-like) acquires the loop's λ exactly as the
                    // loop-entry did; the predicate (port 2) must match
                    // that tagged context — the rendezvous the unfused
                    // switch performed; the arms refine by the
                    // predicate's guard. Port 1 (backedge) is cut and
                    // checked in the post-pass, like a loop-entry's.
                    let r0 = merge_union(&an, &mut defects, 0);
                    let tagged: CubeSet = r0
                        .iter()
                        .map(|c| {
                            let mut c = c.clone();
                            c.loops.insert(loop_id);
                            c
                        })
                        .collect();
                    let firing = match port_ctx(&an, 2) {
                        None => {
                            // Constant predicate (never produced by the
                            // fusion pass): one arm statically receives
                            // everything, like a constant-predicate switch.
                            let sel = usize::from(g.imm(op, 2) == Some(0));
                            an.out_ctx[op.index()][sel] = tagged.clone();
                            tagged.clone()
                        }
                        Some(pred) => {
                            if pred.is_empty() != tagged.is_empty() {
                                let (dead, live, ctx) = if pred.is_empty() {
                                    (2, 0, &tagged)
                                } else {
                                    (0, 2, &pred)
                                };
                                defects.push(defect(
                                    DefectKind::DeadInput,
                                    op,
                                    format!(
                                        "input port {dead} never receives a token while \
                                         port {live} receives {}: tokens leak at the \
                                         rendezvous",
                                        render_set(ctx)
                                    ),
                                ));
                            } else if !same_contexts(&pred, &tagged) {
                                defects.push(defect(
                                    DefectKind::RateMismatch,
                                    op,
                                    format!(
                                        "the retagged entry context is {} but the \
                                         predicate port receives {}: some context \
                                         delivers 0 or ≥2 tokens",
                                        render_set(&tagged),
                                        render_set(&pred)
                                    ),
                                ));
                            }
                            let firing = merge_crossiter(&tagged, &pred);
                            let pred_arc = &arcs[ins[op.index()][2][0]];
                            let key = GuardKey::Pred(pred_arc.from);
                            let key_loops = firing
                                .iter()
                                .flat_map(|c| c.loops.iter().copied())
                                .collect();
                            guard_loops.entry(key).or_insert(key_loops);
                            for arm in 0..2usize {
                                let mut set = CubeSet::new();
                                for cube in &firing {
                                    match cube.guards.get(&key) {
                                        Some(&(have, _)) if have as usize != arm => {}
                                        _ => {
                                            let mut c = cube.clone();
                                            c.guards.insert(key, (arm as u16, 2));
                                            set.insert(c);
                                        }
                                    }
                                }
                                an.out_ctx[op.index()][arm] = set;
                            }
                            firing
                        }
                    };
                    an.firing[op.index()] = firing;
                }
                OpKind::LoopExit { loop_id } => {
                    let input = port_ctx(&an, 0).unwrap_or_default();
                    let mut out = CubeSet::new();
                    // Pre-strip cubes per stripped value: exit contexts that
                    // conflict on an in-loop guard are alternative per-
                    // iteration paths delivering one token per activation, so
                    // only non-conflicting pre-strip cubes that collapse
                    // together indicate a duplicated exit token.
                    let mut sources: BTreeMap<Cube, Vec<Cube>> = BTreeMap::new();
                    for cube in &input {
                        if !cube.loops.contains(&loop_id) {
                            defects.push(defect(
                                DefectKind::MissingLoopTag,
                                op,
                                format!(
                                    "loop-exit for λ{} receives {cube} without that tag",
                                    loop_id.0
                                ),
                            ));
                            continue;
                        }
                        let mut stripped = strip_loop(cube, loop_id, &guard_loops);
                        if exclusive_exit.contains(&loop_id) {
                            let n_sites = sites_of_loop[&loop_id];
                            let key = GuardKey::Exit(loop_id);
                            guard_loops
                                .entry(key)
                                .or_insert_with(|| stripped.loops.clone());
                            stripped.guards.insert(key, (site_of[&op], n_sites));
                        }
                        let prior = sources.entry(stripped.clone()).or_default();
                        if prior.iter().any(|p| !p.conflicts(cube)) {
                            defects.push(defect(
                                DefectKind::DuplicateAfterExit,
                                op,
                                format!(
                                    "two co-deliverable exit contexts collapse to \
                                     {stripped} after stripping λ{}: ≥2 tokens leave \
                                     the loop per entry",
                                    loop_id.0
                                ),
                            ));
                        }
                        prior.push(cube.clone());
                        out.insert(stripped);
                    }
                    an.firing[op.index()] = input;
                    an.out_ctx[op.index()][0] = out;
                }
                OpKind::PrevIter { .. } => {
                    // Input is cut; output feeds only merges (post-pass
                    // checked), which weaken instead of reading this context.
                    an.out_ctx[op.index()][0] = CubeSet::new();
                }
                OpKind::Switch | OpKind::CaseSwitch { .. } => {
                    let arms = kind.n_outputs();
                    let data = port_ctx(&an, 0).unwrap_or_default();
                    let firing;
                    match g.imm(op, 1) {
                        Some(c) => {
                            // Constant predicate: the selected arm statically
                            // receives everything, the others nothing.
                            let sel = match kind {
                                OpKind::Switch => usize::from(c == 0),
                                _ => {
                                    if c >= 0 && (c as usize) < arms - 1 {
                                        c as usize
                                    } else {
                                        arms - 1
                                    }
                                }
                            };
                            firing = data.clone();
                            an.out_ctx[op.index()][sel] = data;
                        }
                        None => {
                            firing = rendezvous(&an, &mut defects, &[0, 1]);
                            let pred_arc = &arcs[ins[op.index()][1][0]];
                            let key = GuardKey::Pred(pred_arc.from);
                            let key_loops = firing
                                .iter()
                                .flat_map(|c| c.loops.iter().copied())
                                .collect();
                            guard_loops.entry(key).or_insert(key_loops);
                            for arm in 0..arms {
                                let mut set = CubeSet::new();
                                for cube in &firing {
                                    match cube.guards.get(&key) {
                                        Some(&(have, _)) if have as usize != arm => {
                                            // Contradictory guard: this arm is
                                            // dead for this cube.
                                        }
                                        _ => {
                                            let mut c = cube.clone();
                                            c.guards.insert(key, (arm as u16, arms as u16));
                                            set.insert(c);
                                        }
                                    }
                                }
                                an.out_ctx[op.index()][arm] = set;
                            }
                        }
                    }
                    an.firing[op.index()] = firing;
                }
                _ => {
                    // Strict operators: rendezvous of all arc-fed inputs, all
                    // outputs emit in the firing context.
                    let ports: Vec<usize> = (0..kind.n_inputs()).collect();
                    let f = rendezvous(&an, &mut defects, &ports);
                    for pc in 0..kind.n_outputs() {
                        an.out_ctx[op.index()][pc] = f.clone();
                    }
                    an.firing[op.index()] = f;
                }
            }
        }
        // Decide which multi-exit loops have exclusive sites, given the
        // contexts this round computed (with the guards found so far).
        let known = exclusive_exit.len();
        for (&lid, &n) in &sites_of_loop {
            if n < 2 {
                continue;
            }
            let mut by_site: BTreeMap<u16, Vec<Cube>> = BTreeMap::new();
            for op in g.op_ids() {
                if matches!(*g.kind(op), OpKind::LoopExit { loop_id } if loop_id == lid) {
                    by_site
                        .entry(site_of[&op])
                        .or_default()
                        .extend(an.firing[op.index()].iter().cloned());
                }
            }
            let sites: Vec<&Vec<Cube>> = by_site.values().collect();
            let exclusive = sites.iter().enumerate().all(|(i, a)| {
                sites[i + 1..]
                    .iter()
                    .all(|b| a.iter().all(|ca| b.iter().all(|cb| ca.conflicts(cb))))
            });
            if exclusive {
                exclusive_exit.insert(lid);
            }
        }
        if exclusive_exit.len() == known {
            break; // fixpoint: this round already used every guard
        }
        // Reset everything this round computed and re-evaluate.
        an.firing = vec![CubeSet::new(); g.len()];
        an.out_ctx = g
            .op_ids()
            .map(|o| vec![CubeSet::new(); g.kind(o).n_outputs()])
            .collect();
        guard_loops.clear();
        chain_feed.clear();
        defects.clear();
    }

    // ---- Post-pass: backedges, loop exits, PrevIter discipline ----

    // Exit-side coverage per loop: contexts consumed by a loop-exit
    // operator, plus the chain feeds recorded above.
    let mut exit_cover: BTreeMap<LoopId, Vec<Cube>> = chain_feed;
    for op in g.op_ids() {
        if let OpKind::LoopExit { loop_id } = *g.kind(op) {
            exit_cover.entry(loop_id).or_default().extend(
                an.firing[op.index()]
                    .iter()
                    .filter(|c| !c.crossiter && c.loops.contains(&loop_id))
                    .cloned(),
            );
        }
    }

    // Backedge cubes per loop id.
    let mut backedge_cubes: BTreeMap<LoopId, Vec<Cube>> = BTreeMap::new();
    for op in g.op_ids() {
        // A fused loop-entry/switch has the same backedge obligations as a
        // loop-entry; its entry-tagged context is its firing context (for
        // a loop-entry the two coincide).
        let loop_id = match *g.kind(op) {
            OpKind::LoopEntry { loop_id } | OpKind::LoopSwitch { loop_id } => loop_id,
            _ => continue,
        };
        let out = an.firing[op.index()].clone();
        let mut mine: Vec<Cube> = Vec::new();
        for &ai in &ins[op.index()][1] {
            let a = &arcs[ai];
            let src = &an.out_ctx[a.from.op.index()][a.from.port as usize];
            for cube in src {
                if !cube.loops.contains(&loop_id) {
                    defects.push(defect(
                        DefectKind::MissingLoopTag,
                        op,
                        format!(
                            "backedge of λ{} carries {cube} without that loop's tag",
                            loop_id.0
                        ),
                    ));
                    continue;
                }
                // The backedge must be strictly guarded beyond the entry's
                // own output context, else every iteration re-enters and
                // the loop can never take an exit.
                let refined = out.iter().any(|o| {
                    o.loops == cube.loops
                        && o.guards.iter().all(|(k, v)| cube.guards.get(k) == Some(v))
                        && cube.guards.len() > o.guards.len()
                });
                if !refined && !cube.crossiter {
                    defects.push(defect(
                        DefectKind::UnguardedBackedge,
                        op,
                        format!(
                            "backedge of λ{} carries {cube}, not guarded beyond the \
                             entry context {}",
                            loop_id.0,
                            render_set(&out)
                        ),
                    ));
                }
                mine.push(cube.clone());
                backedge_cubes.entry(loop_id).or_default().push(cube.clone());
            }
        }
        // Coverage: every iteration context must either re-enter via the
        // backedge or be consumed on the exit side — a gap is a context in
        // which the backedge port waits forever and the loop stalls.
        for o in &out {
            if o.crossiter {
                continue;
            }
            let mut residue = vec![o.clone()];
            for b in mine.iter().filter(|b| !b.crossiter) {
                residue = subtract_all(residue, b);
            }
            for c in exit_cover.get(&loop_id).into_iter().flatten() {
                residue = subtract_all(residue, c);
            }
            if let Some(r) = residue.first() {
                defects.push(defect(
                    DefectKind::BackedgeGap,
                    op,
                    format!(
                        "iteration context {r} of λ{} neither re-enters via the \
                         backedge nor reaches a loop exit: the entry stalls",
                        loop_id.0
                    ),
                ));
            }
        }
    }

    // Output ports with at least one consumer, for the dropped-token check.
    let consumed: BTreeSet<(OpId, u16)> =
        arcs.iter().map(|a| (a.from.op, a.from.port)).collect();

    for op in g.op_ids() {
        match *g.kind(op) {
            // A switch steers its token to exactly one arm per activation;
            // an arm that can receive tokens but has no consumer drops
            // them, starving whatever the route was supposed to feed (a
            // rate the rendezvous checks cannot see when the loss hides
            // behind a cut or cross-iteration arc).
            OpKind::Switch | OpKind::CaseSwitch { .. } | OpKind::LoopSwitch { .. } => {
                for (pc, ctx) in an.out_ctx[op.index()].iter().enumerate() {
                    if !ctx.is_empty() && !consumed.contains(&(op, pc as u16)) {
                        defects.push(defect(
                            DefectKind::DroppedToken,
                            op,
                            format!(
                                "switch arm {pc} carries {} but has no outgoing arc: \
                                 its tokens are silently dropped",
                                render_set(ctx)
                            ),
                        ));
                    }
                }
            }
            OpKind::LoopExit { loop_id } => {
                let empty = Vec::new();
                let backs = backedge_cubes.get(&loop_id).unwrap_or(&empty);
                for cube in &an.firing[op.index()] {
                    if !cube.loops.contains(&loop_id) {
                        continue; // already reported above
                    }
                    if cube.crossiter {
                        // Fig 14 pattern: the cross-iteration chain
                        // delivers once per iteration; a guard must select
                        // exactly one of those firings for the exit.
                        if cube.guards.is_empty() {
                            defects.push(defect(
                                DefectKind::UngatedLoopExit,
                                op,
                                format!(
                                    "cross-iteration exit context {cube} is unguarded: \
                                     it would exit every iteration"
                                ),
                            ));
                        }
                    } else {
                        for b in backs {
                            if !cube.conflicts(b) {
                                defects.push(defect(
                                    DefectKind::UngatedLoopExit,
                                    op,
                                    format!(
                                        "exit context {cube} does not contradict \
                                         backedge context {b}: the exit fires on \
                                         iterations that also continue"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            OpKind::PrevIter { loop_id } => {
                // Input discipline: tagged with the loop, and guarded (an
                // unguarded prev-iter retags every token, faulting at
                // iteration 0).
                for &ai in &ins[op.index()][0] {
                    let a = &arcs[ai];
                    let src = &an.out_ctx[a.from.op.index()][a.from.port as usize];
                    for cube in src {
                        if !cube.loops.contains(&loop_id) {
                            defects.push(defect(
                                DefectKind::MissingLoopTag,
                                op,
                                format!(
                                    "prev-iter for λ{} receives {cube} without that \
                                     loop's tag",
                                    loop_id.0
                                ),
                            ));
                        } else if cube.guards.is_empty() {
                            defects.push(defect(
                                DefectKind::PrevIterMisuse,
                                op,
                                format!(
                                    "prev-iter input context {cube} is unguarded: it \
                                     would retag iteration 0 and fault"
                                ),
                            ));
                        }
                    }
                }
                // Output discipline: only merge ports may consume it.
                for a in arcs {
                    if a.from.op == op && !g.kind(a.to.op).is_merge_like(a.to.port as usize) {
                        defects.push(defect(
                            DefectKind::PrevIterMisuse,
                            op,
                            format!(
                                "prev-iter output feeds strict port {}.{} of a \
                                 {} (must feed a merge)",
                                a.to.op.index(),
                                a.to.port,
                                g.kind(a.to.op).mnemonic()
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    an.defects = defects;
    an
}

/// Compare two cube sets for rendezvous, ignoring `crossiter` flags.
fn same_contexts(a: &CubeSet, b: &CubeSet) -> bool {
    let strip = |s: &CubeSet| -> BTreeSet<(BTreeSet<LoopId>, BTreeMap<GuardKey, (u16, u16)>)> {
        s.iter()
            .map(|c| (c.loops.clone(), c.guards.clone()))
            .collect()
    };
    strip(a) == strip(b)
}

/// Merge two rendezvous-equal sets, OR-ing `crossiter` per cube.
fn merge_crossiter(a: &CubeSet, b: &CubeSet) -> CubeSet {
    let mut out = CubeSet::new();
    for ca in a {
        let ci = ca.crossiter
            || b.iter().any(|cb| cb.crossiter && ca.same_context(cb));
        let mut c = ca.clone();
        c.crossiter = ci;
        out.insert(c);
    }
    out
}

/// Cancel complete sibling sets: cubes differing only in one guard's arm,
/// with all arms present, reduce to the cube without that guard. Iterated
/// to a fixpoint so nested conditionals fully cancel.
fn reduce(mut set: CubeSet) -> CubeSet {
    loop {
        let mut replaced = None;
        'search: for cube in &set {
            for (&key, &(_, arms)) in &cube.guards {
                let mut base = cube.clone();
                base.guards.remove(&key);
                let all = (0..arms).all(|arm| {
                    let mut sib = base.clone();
                    sib.guards.insert(key, (arm, arms));
                    set.contains(&sib)
                });
                if all {
                    replaced = Some((base, key, arms));
                    break 'search;
                }
            }
        }
        let Some((base, key, arms)) = replaced else {
            return set;
        };
        for arm in 0..arms {
            let mut sib = base.clone();
            sib.guards.insert(key, (arm, arms));
            set.remove(&sib);
        }
        set.insert(base);
    }
}

/// Weaken a merge output whose port also receives a `PrevIter` arc of
/// `loop_id`: the cross-iteration chain delivers the union once per
/// iteration of that loop, so guards introduced inside it are stripped and
/// the result is flagged `crossiter`.
fn weaken_crossiter(
    set: &CubeSet,
    loop_id: LoopId,
    guard_loops: &BTreeMap<GuardKey, BTreeSet<LoopId>>,
) -> CubeSet {
    set.iter()
        .map(|c| {
            let mut c = c.clone();
            c.guards
                .retain(|k, _| guard_loops.get(k).is_none_or(|gl| !gl.contains(&loop_id)));
            c.crossiter = true;
            c
        })
        .collect()
}

/// Subtract cube `b` from cube `a`: the family of contexts described by
/// `a` but not by `b`, as a disjoint list of cubes. Cubes over different
/// loop sets or with contradictory guards are disjoint.
fn subtract(a: &Cube, b: &Cube) -> Vec<Cube> {
    if a.loops != b.loops || a.conflicts(b) {
        return vec![a.clone()];
    }
    let extra: Vec<(GuardKey, (u16, u16))> = b
        .guards
        .iter()
        .filter(|(k, _)| !a.guards.contains_key(k))
        .map(|(&k, &v)| (k, v))
        .collect();
    if extra.is_empty() {
        return Vec::new(); // every context of `a` is in `b`
    }
    // Peel off one guard of `b` at a time: contexts that disagree on it
    // are kept, contexts that agree continue to the next guard.
    let mut out = Vec::new();
    let mut base = a.clone();
    for (k, (arm, arms)) in extra {
        for other in 0..arms {
            if other != arm {
                let mut c = base.clone();
                c.guards.insert(k, (other, arms));
                out.push(c);
            }
        }
        base.guards.insert(k, (arm, arms));
    }
    out
}

/// Subtract `b` from every cube of a disjoint list.
fn subtract_all(cubes: Vec<Cube>, b: &Cube) -> Vec<Cube> {
    cubes.iter().flat_map(|a| subtract(a, b)).collect()
}

/// Strip a loop's tag and every guard introduced inside it; exits clear
/// the `crossiter` flag (the exit token is unique per entry by the
/// guarded-exit assumption).
fn strip_loop(
    cube: &Cube,
    loop_id: LoopId,
    guard_loops: &BTreeMap<GuardKey, BTreeSet<LoopId>>,
) -> Cube {
    let mut c = cube.clone();
    c.loops.remove(&loop_id);
    c.guards
        .retain(|k, _| guard_loops.get(k).is_none_or(|gl| !gl.contains(&loop_id)));
    c.crossiter = false;
    c
}

/// BFS parents from `Start`, for path witnesses.
struct Witnesses {
    parent: Vec<Option<OpId>>,
    reached: Vec<bool>,
}

impl Witnesses {
    fn new(g: &Dfg) -> Witnesses {
        let mut parent = vec![None; g.len()];
        let mut reached = vec![false; g.len()];
        if let Ok(start) = g.start() {
            let mut adj: Vec<Vec<OpId>> = vec![Vec::new(); g.len()];
            for a in g.arcs() {
                adj[a.from.op.index()].push(a.to.op);
            }
            reached[start.index()] = true;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &s in &adj[v.index()] {
                    if !reached[s.index()] {
                        reached[s.index()] = true;
                        parent[s.index()] = Some(v);
                        queue.push_back(s);
                    }
                }
            }
        }
        Witnesses { parent, reached }
    }

    fn path_to(&self, op: OpId) -> Vec<OpId> {
        if op.index() >= self.reached.len() || !self.reached[op.index()] {
            return Vec::new();
        }
        let mut path = vec![op];
        let mut cur = op;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ArcKind, Dfg, Port};
    use cf2df_cfg::{BinOp, VarId};

    fn connect(g: &mut Dfg, from: (OpId, usize), to: (OpId, usize)) {
        g.connect(
            Port::new(from.0, from.1),
            Port::new(to.0, to.1),
            ArcKind::Value,
        );
    }

    #[test]
    fn straight_line_is_clean() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let l = g.add(OpKind::Load { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 2 });
        connect(&mut g, (s, 0), (l, 0));
        connect(&mut g, (l, 0), (e, 0));
        connect(&mut g, (l, 1), (e, 1));
        certify(&g).unwrap();
    }

    /// A conditional diamond: switch → two arms → merge; both rejoin.
    fn diamond() -> (Dfg, OpId, OpId, OpId) {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let pred = g.add(OpKind::Binary { op: BinOp::Lt });
        g.set_imm(pred, 1, 10);
        let sw = g.add(OpKind::Switch);
        let a0 = g.add(OpKind::Identity);
        let a1 = g.add(OpKind::Identity);
        let m = g.add(OpKind::Merge);
        let e = g.add(OpKind::End { inputs: 1 });
        connect(&mut g, (s, 0), (pred, 0));
        connect(&mut g, (s, 0), (sw, 0));
        connect(&mut g, (pred, 0), (sw, 1));
        connect(&mut g, (sw, 0), (a0, 0));
        connect(&mut g, (sw, 1), (a1, 0));
        connect(&mut g, (a0, 0), (m, 0));
        connect(&mut g, (a1, 0), (m, 0));
        connect(&mut g, (m, 0), (e, 0));
        (g, sw, a0, m)
    }

    #[test]
    fn diamond_rejoins_cleanly() {
        let (g, ..) = diamond();
        certify(&g).unwrap();
    }

    #[test]
    fn unbalanced_merge_is_conditional_end() {
        // Remove one arm's arc into the merge: End becomes conditional.
        let (mut g, _, a0, m) = diamond();
        assert!(g.disconnect(Port::new(a0, 0), Port::new(m, 0)));
        let defects = certify(&g).unwrap_err();
        assert!(
            defects.iter().any(|d| matches!(
                d.kind,
                DefectKind::ConditionalEnd | DefectKind::Structural
            )),
            "defects: {defects:?}"
        );
    }

    #[test]
    fn both_arms_to_same_dest_is_a_collision() {
        // Retarget arm 1's arc so arm 0's destination gets both.
        let (mut g, sw, a0, _) = diamond();
        assert!(g.retarget_input(Port::new(a1_of(&g, sw), 0), Port::new(a0, 0)) > 0);
        let defects = certify(&g).unwrap_err();
        assert!(
            defects
                .iter()
                .any(|d| matches!(d.kind, DefectKind::Structural)),
            "two arcs into a strict identity port: {defects:?}"
        );
    }

    fn a1_of(g: &Dfg, sw: OpId) -> OpId {
        g.arcs()
            .iter()
            .find(|a| a.from.op == sw && a.from.port == 1)
            .map(|a| a.to.op)
            .unwrap()
    }

    /// A minimal well-formed loop:
    /// start → LE ⇄ body(add) → switch(pred) → [backedge | LX → end].
    fn simple_loop() -> (Dfg, OpId, OpId, OpId) {
        let mut g = Dfg::new();
        let lid = cf2df_cfg::LoopId(0);
        let s = g.add(OpKind::Start);
        let le = g.add(OpKind::LoopEntry { loop_id: lid });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 1);
        let pred = g.add(OpKind::Binary { op: BinOp::Lt });
        g.set_imm(pred, 1, 10);
        let sw = g.add(OpKind::Switch);
        let lx = g.add(OpKind::LoopExit { loop_id: lid });
        let e = g.add(OpKind::End { inputs: 1 });
        connect(&mut g, (s, 0), (le, 0));
        connect(&mut g, (le, 0), (add, 0));
        connect(&mut g, (add, 0), (pred, 0));
        connect(&mut g, (add, 0), (sw, 0));
        connect(&mut g, (pred, 0), (sw, 1));
        connect(&mut g, (sw, 0), (le, 1)); // true: continue
        connect(&mut g, (sw, 1), (lx, 0)); // false: exit
        connect(&mut g, (lx, 0), (e, 0));
        (g, le, sw, lx)
    }

    #[test]
    fn gated_loop_is_clean() {
        let (g, ..) = simple_loop();
        certify(&g).unwrap();
    }

    #[test]
    fn missing_loop_exit_is_a_tag_leak() {
        let (mut g, _, _, lx) = simple_loop();
        g.set_kind(lx, OpKind::Identity);
        let defects = certify(&g).unwrap_err();
        assert!(
            defects.iter().any(|d| d.kind == DefectKind::TagLeak),
            "defects: {defects:?}"
        );
    }

    #[test]
    fn ungated_cycle_is_rejected() {
        let (mut g, le, sw, _) = simple_loop();
        // Replace the loop entry with a plain merge: the cycle is no
        // longer gated by a loop operator.
        g.set_kind(le, OpKind::Synch { inputs: 2 });
        let _ = sw;
        let defects = certify(&g).unwrap_err();
        assert!(
            defects.iter().any(|d| d.kind == DefectKind::UngatedCycle),
            "defects: {defects:?}"
        );
    }

    #[test]
    fn exit_from_continue_arm_is_ungated() {
        // Move the exit arc to originate from the *continue* arm: the exit
        // no longer contradicts the backedge.
        let (mut g, _, sw, lx) = simple_loop();
        assert!(g.disconnect(Port::new(sw, 1), Port::new(lx, 0)));
        g.connect(Port::new(sw, 0), Port::new(lx, 0), ArcKind::Value);
        let defects = certify(&g).unwrap_err();
        assert!(
            defects.iter().any(|d| d.kind == DefectKind::UngatedLoopExit),
            "defects: {defects:?}"
        );
    }

    #[test]
    fn unguarded_backedge_is_rejected() {
        // Wire the body straight back to the entry, bypassing the switch:
        // every iteration re-enters.
        let (mut g, le, sw, lx) = simple_loop();
        assert!(g.disconnect(Port::new(sw, 0), Port::new(le, 1)));
        // The body's add output loops straight back.
        let add = g
            .arcs()
            .iter()
            .find(|a| a.to.op == sw && a.to.port == 0)
            .map(|a| a.from.op)
            .unwrap();
        g.connect(Port::new(add, 0), Port::new(le, 1), ArcKind::Value);
        // Keep sw's true arm consumed to stay structurally valid.
        let _ = lx;
        let defects = certify(&g).unwrap_err();
        assert!(
            defects
                .iter()
                .any(|d| d.kind == DefectKind::UnguardedBackedge),
            "defects: {defects:?}"
        );
    }

    #[test]
    fn defects_carry_path_witnesses() {
        let (mut g, _, _, lx) = simple_loop();
        g.set_kind(lx, OpKind::Identity);
        let defects = certify(&g).unwrap_err();
        let d = defects
            .iter()
            .find(|d| d.kind == DefectKind::TagLeak)
            .unwrap();
        assert!(!d.witness.is_empty(), "witness path present");
        let start = g.start().unwrap();
        assert_eq!(d.witness.first(), Some(&start), "witness starts at Start");
        assert_eq!(d.witness.last(), d.op.as_ref(), "witness ends at defect");
        let rendered = d.to_string();
        assert!(rendered.contains("witness"), "{rendered}");
    }

    #[test]
    fn sibling_reduction_cancels_nested_guards() {
        let mut s = CubeSet::new();
        let key_outer = GuardKey::Pred(Port::new(OpId(7), 0));
        let key_inner = GuardKey::Pred(Port::new(OpId(9), 0));
        let mk = |pairs: &[(GuardKey, u16)]| Cube {
            loops: BTreeSet::new(),
            guards: pairs.iter().map(|&(k, a)| (k, (a, 2))).collect(),
            crossiter: false,
        };
        s.insert(mk(&[(key_outer, 0)]));
        s.insert(mk(&[(key_outer, 1), (key_inner, 0)]));
        s.insert(mk(&[(key_outer, 1), (key_inner, 1)]));
        let r = reduce(s);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&mk(&[])));
    }
}
