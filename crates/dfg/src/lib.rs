#![warn(missing_docs)]

//! The dataflow-graph intermediate representation targeted by the
//! translation schemas of Beck, Johnson & Pingali, *From Control Flow to
//! Dataflow* (1990).
//!
//! A dataflow graph is a set of operators connected by arcs. Operators fire
//! when tokens are present on their input ports (§2.2); arcs either carry
//! *values* or *dummy access tokens* used purely for sequencing memory
//! operations (drawn dotted in the paper's figures).
//!
//! The operator set ([`op`]) includes the paper's `switch`, `merge` and
//! `synch tree` (Fig 2), split-phase `load`/`store` on a multiply-written
//! memory (the paper's extension of the classical dataflow memory model),
//! the loop-control operators of §3 realized as iteration-tag managers, the
//! iteration-retagging operators (`prev-iter`, `iter-index`) behind the
//! array-store parallelization of Fig 14, and I-structure operations for
//! the write-once enhancement of §6.3.

pub mod build;
pub mod certify;
pub mod dot;
pub mod fuse;
pub mod graph;
pub mod io;
pub mod mutate;
pub mod op;
pub mod stats;
pub mod validate;

pub use build::synch_tree;
pub use certify::{certify, Defect, DefectKind};
pub use fuse::{fuse, FuseStats};
pub use graph::{Arc, ArcKind, Dfg, OpId, Port};
pub use mutate::{mutate, Mutation, MutationClass};
pub use op::{macro_eval, MacroSrc, MacroStep, OpKind};
pub use stats::DfgStats;
pub use validate::{validate, DfgError};
