//! Macro-op fusion: collapse maximal linear chains of strict operators
//! into compound [`OpKind::Macro`] actors.
//!
//! The paper's fine-grain ETS cost model pays a rendezvous slot, a
//! token per arc, and a scheduler round-trip for every operator — even
//! along purely serial arithmetic chains where no parallelism exists to
//! buy. This pass coarsens the graph the way Labyrinth-style compilers
//! coarsen control flow into compound dataflow actors: a chain
//! `a → b → c` where each link is the producer's *only* consumer
//! becomes one `Macro` node carrying the straight-line micro-program
//! `[a; b; c]`. The macro fires once per tag with the union of the
//! chain's external live inputs and emits only the chain's final value:
//! every interior token, slot, and firing is elided.
//!
//! # Chain eligibility
//!
//! A chain member must be one of `Unary`, `Binary`, `Identity`, `Gate`,
//! or `Synch` — the *strict, single-output, tag-transparent* operators.
//! Everything else terminates a chain, by design:
//!
//! * `Switch`/`CaseSwitch`/`Merge` steer or join token streams — their
//!   per-arc firing discipline has no straight-line equivalent;
//! * `LoopEntry`/`LoopExit`/`PrevIter`/`IterIndex` create, strip, or
//!   read iteration tags, so fusing across them would change Schema 3
//!   tag allocation;
//! * memory operators (`Load`/`Store`/`*Idx`/`Ist*`) have side effects
//!   and split-phase latency the machine must schedule individually;
//! * `Start`/`End` are the machine's seed and halt points.
//!
//! A link `x → y` exists when `x`'s single output port has exactly one
//! outgoing arc, landing on an eligible `y`. The chain tail may fan out
//! freely — its consumers just read the macro's output port 0. Because
//! every fused operator is tag-transparent, all tokens consumed and
//! produced by one macro firing carry the *same* tag the unfused chain
//! would have used: rendezvous keys, loop tags, and Schema 1–3
//! semantics are untouched.
//!
//! Immediates on fused ports are baked into the micro-program as
//! [`MacroSrc::Imm`]; arc-fed external inputs become fresh macro input
//! ports. The rewrite is validated downstream both by `validate()` and
//! by the `certify` token-rate analysis, which treats a macro as an
//! ordinary strict operator.
//!
//! # Loop-entry/switch pairing
//!
//! Chains stop at tag boundaries, so the dominant *residual* traffic in
//! loop-heavy graphs is the per-variable circulation step
//! `loop-entry → switch`: every iteration of every circulating variable
//! pays a loop-entry firing, an intermediate token, and a switch
//! rendezvous. A second fusion rule collapses the pair into one
//! [`OpKind::LoopSwitch`] compound when the loop-entry's output feeds
//! *only* that switch's data port and the switch's predicate is a plain
//! arc: the compound retags the incoming token exactly as the
//! loop-entry would (so Schema 3 tag allocation is unchanged), joins
//! the predicate directly at the iteration tag, and steers in a single
//! firing. A loop-entry whose value is also read by the loop's
//! predicate or body fans out and is left alone.

use crate::graph::{Dfg, OpId, Port};
use crate::op::{MacroSrc, MacroStep, OpKind};

/// What the fusion pass did to a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Chains collapsed (= macro operators created).
    pub chains: usize,
    /// Loop-entry/switch pairs collapsed into `LoopSwitch` compounds.
    pub pairs: usize,
    /// Operators eliminated (interior chain members plus one eliminated
    /// switch per pair; this is the machine's `ops_elided` per firing,
    /// summed over compounds).
    pub ops_fused: usize,
}

/// Is `kind` allowed inside a fused chain?
fn eligible(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Unary { .. }
            | OpKind::Binary { .. }
            | OpKind::Identity
            | OpKind::Gate
            | OpKind::Synch { .. }
    )
}

/// Fuse maximal linear chains of eligible operators into `Macro` nodes.
///
/// Returns the statistics and, for each old operator id, its new id in
/// the compacted graph (`None` for eliminated interior operators; a
/// chain head keeps its id slot and becomes the macro).
pub fn fuse(g: &mut Dfg) -> (FuseStats, Vec<Option<OpId>>) {
    let n = g.len();
    let outs = g.out_arcs();
    let ins = g.in_arcs();

    // The link function: next[x] = y when x's only consumer is an
    // eligible y (and x itself is eligible with a single out arc).
    let mut next: Vec<Option<OpId>> = vec![None; n];
    let mut has_pred_link = vec![false; n];
    for op in g.op_ids() {
        if !eligible(g.kind(op)) {
            continue;
        }
        // All eligible kinds have exactly one output port.
        let out = &outs[op.index()];
        if out.len() != 1 || out[0].len() != 1 {
            continue;
        }
        let arc = g.arcs()[out[0][0]];
        let succ = arc.to.op;
        if succ != op && eligible(g.kind(succ)) {
            next[op.index()] = Some(succ);
            has_pred_link[succ.index()] = true;
        }
    }

    // Walk chains from their heads. `claimed` keeps chains disjoint
    // (two producers can each have the same op as their single
    // consumer, on different ports) and doubles as the cycle guard.
    let mut claimed = vec![false; n];
    let mut chains: Vec<Vec<OpId>> = Vec::new();
    for op in g.op_ids() {
        if next[op.index()].is_none() || has_pred_link[op.index()] || claimed[op.index()] {
            continue;
        }
        let mut chain = vec![op];
        claimed[op.index()] = true;
        let mut cur = op;
        while let Some(succ) = next[cur.index()] {
            if claimed[succ.index()] {
                break;
            }
            claimed[succ.index()] = true;
            chain.push(succ);
            cur = succ;
        }
        if chain.len() >= 2 {
            chains.push(chain);
        }
    }

    // Phase 1: plan every chain against the *pristine* graph — the
    // `ins`/`outs` arc-index tables are only valid before any rewrite.
    struct Plan {
        head: OpId,
        tail: OpId,
        /// Internal link arcs, by exact endpoints (both chain-private).
        links: Vec<(Port, Port)>,
        /// (old external input port, new macro input port).
        moves: Vec<(Port, u16)>,
        kind: OpKind,
        fused: usize,
    }
    let mut plans: Vec<Plan> = Vec::new();
    'chains: for chain in &chains {
        let in_chain: std::collections::HashSet<OpId> = chain.iter().copied().collect();
        let head = chain[0];
        let mut steps: Vec<MacroStep> = Vec::with_capacity(chain.len());
        // (old input port on a chain member) → new macro input port.
        let mut moves: Vec<(Port, u16)> = Vec::new();
        let mut n_ext: u32 = 0;
        for (ci, &op) in chain.iter().enumerate() {
            let kind = g.kind(op).clone();
            let chain_port: Option<usize> = if ci == 0 {
                None
            } else {
                // The unique arc from the predecessor's output port 0.
                let pred = chain[ci - 1];
                let link = outs[pred.index()][0][0];
                Some(g.arcs()[link].to.port as usize)
            };
            let mut srcs: Vec<MacroSrc> = Vec::with_capacity(kind.n_inputs());
            for p in 0..kind.n_inputs() {
                if chain_port == Some(p) {
                    srcs.push(MacroSrc::Chain);
                } else if let Some(c) = g.imm(op, p) {
                    srcs.push(MacroSrc::Imm(c));
                } else {
                    // An arc-fed external input. A source inside the
                    // chain itself would mean a same-tag cycle (the
                    // unfused graph would deadlock identically, and
                    // certify rejects it) — skip such chains outright.
                    let feeds = &ins[op.index()][p];
                    if feeds.len() != 1 || in_chain.contains(&g.arcs()[feeds[0]].from.op) {
                        continue 'chains;
                    }
                    if n_ext > u16::MAX as u32 {
                        continue 'chains;
                    }
                    moves.push((Port::new(op, p), n_ext as u16));
                    srcs.push(MacroSrc::In(n_ext as u16));
                    n_ext += 1;
                }
            }
            steps.push(match kind {
                OpKind::Unary { op } => MacroStep::Un(op, srcs[0]),
                OpKind::Binary { op } => MacroStep::Bin(op, srcs[0], srcs[1]),
                OpKind::Identity | OpKind::Gate => MacroStep::Fwd(srcs[0]),
                OpKind::Synch { .. } => MacroStep::Zero,
                _ => unreachable!("chain members are eligible"),
            });
        }
        // A macro with no arc-fed input would never fire.
        if n_ext == 0 {
            continue 'chains;
        }
        let links = chain
            .windows(2)
            .map(|w| {
                let a = g.arcs()[outs[w[0].index()][0][0]];
                (a.from, a.to)
            })
            .collect();
        plans.push(Plan {
            head,
            tail: *chain.last().expect("chains are non-empty"),
            links,
            moves,
            kind: OpKind::Macro {
                inputs: n_ext,
                steps,
            },
            fused: chain.len() - 1,
        });
    }

    // Loop-entry/switch pairs, planned against the same pristine graph.
    // Eligible when the entry's single output arc is the switch's data
    // port, the switch's data port has no other feeder, and the
    // predicate is a plain single arc (no immediate). Switches are never
    // chain members, so pairs and chains are automatically disjoint.
    let mut pairs: Vec<(OpId, OpId, cf2df_cfg::LoopId)> = Vec::new();
    for le in g.op_ids() {
        let OpKind::LoopEntry { loop_id } = *g.kind(le) else {
            continue;
        };
        let out = &outs[le.index()][0];
        if out.len() != 1 {
            continue;
        }
        let link = g.arcs()[out[0]];
        let sw = link.to.op;
        if link.to.port != 0 || !matches!(g.kind(sw), OpKind::Switch) {
            continue;
        }
        if ins[sw.index()][0].len() != 1 {
            continue;
        }
        if ins[sw.index()][1].len() != 1 || g.imm(sw, 1).is_some() {
            continue;
        }
        pairs.push((le, sw, loop_id));
    }

    // Phase 2: rewrite. Each step is keyed so chains cannot interfere:
    // internal link arcs are private to their chain (both endpoints
    // claimed) and removed by exact (from, to) endpoints; external
    // inputs are retargeted keyed on their destination only (another
    // chain re-sourcing the producer side cannot confuse the match);
    // the tail's fan-out is re-sourced keyed on its origin only.
    let mut stats = FuseStats::default();
    for plan in plans {
        for (from, to) in plan.links {
            let removed = g.disconnect(from, to);
            debug_assert!(removed, "chain link arc present");
        }
        g.replace_kind(plan.head, plan.kind);
        for (old, q) in plan.moves {
            let moved = g.retarget_input(old, Port { op: plan.head, port: q });
            debug_assert_eq!(moved, 1, "external input arc present");
        }
        g.retarget_output(Port::new(plan.tail, 0), Port::new(plan.head, 0));
        stats.chains += 1;
        stats.ops_fused += plan.fused;
    }

    // Pair rewrites commute with the chain rewrites above: chains edit
    // arc *destinations* of their own members and re-source their tail's
    // port 0 (never a loop-entry's or switch's), while pairs edit the
    // pred arc by its destination `(sw, 1)` and the switch's *output*
    // ports — no arc is keyed by both. The entry keeps its id slot and
    // becomes the compound; the switch is orphaned and compacted away.
    for (le, sw, loop_id) in pairs {
        g.replace_kind(le, OpKind::LoopSwitch { loop_id });
        let removed = g.disconnect(Port::new(le, 0), Port::new(sw, 0));
        debug_assert!(removed, "entry→switch link arc present");
        let moved = g.retarget_input(Port::new(sw, 1), Port::new(le, 2));
        debug_assert_eq!(moved, 1, "predicate arc present");
        g.retarget_output(Port::new(sw, 0), Port::new(le, 0));
        g.retarget_output(Port::new(sw, 1), Port::new(le, 1));
        stats.pairs += 1;
        stats.ops_fused += 1;
    }

    if stats.chains == 0 && stats.pairs == 0 {
        return (stats, (0..n as u32).map(|i| Some(OpId(i))).collect());
    }
    // Interior chain members are now isolated; compact them away.
    let (compacted, map) = g.compact();
    *g = compacted;
    (stats, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ArcKind;
    use cf2df_cfg::{BinOp, UnOp, VarId};

    fn connect(g: &mut Dfg, from: (OpId, usize), to: (OpId, usize)) {
        g.connect(
            Port::new(from.0, from.1),
            Port::new(to.0, to.1),
            ArcKind::Value,
        );
    }

    /// start → load → (+imm 1) → neg → (* in) → store → end, with the
    /// multiplier fed by a second load: the three-op arithmetic chain
    /// fuses into one macro with two external inputs.
    #[test]
    fn arithmetic_chain_fuses_into_one_macro() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let ld2 = g.add(OpKind::Load { var: VarId(1) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 1);
        let neg = g.add(OpKind::Unary { op: UnOp::Neg });
        let mul = g.add(OpKind::Binary { op: BinOp::Mul });
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        connect(&mut g, (s, 0), (ld, 0));
        connect(&mut g, (ld, 1), (ld2, 0));
        connect(&mut g, (ld, 0), (add, 0));
        connect(&mut g, (add, 0), (neg, 0));
        connect(&mut g, (neg, 0), (mul, 0));
        connect(&mut g, (ld2, 0), (mul, 1));
        connect(&mut g, (mul, 0), (st, 0));
        connect(&mut g, (ld2, 1), (st, 1));
        connect(&mut g, (st, 0), (e, 0));
        crate::validate::validate(&g).unwrap();

        let before = g.len();
        let (stats, map) = fuse(&mut g);
        assert_eq!(stats.chains, 1);
        assert_eq!(stats.ops_fused, 2);
        assert_eq!(g.len(), before - 2);
        crate::validate::validate(&g).unwrap();
        // The head slot holds the macro; interiors are gone.
        let m = map[add.index()].expect("head survives");
        let OpKind::Macro { inputs, steps } = g.kind(m) else {
            panic!("head not a macro: {:?}", g.kind(m));
        };
        assert_eq!(*inputs, 2);
        assert_eq!(
            steps.as_slice(),
            [
                MacroStep::Bin(BinOp::Add, MacroSrc::In(0), MacroSrc::Imm(1)),
                MacroStep::Un(UnOp::Neg, MacroSrc::Chain),
                MacroStep::Bin(BinOp::Mul, MacroSrc::Chain, MacroSrc::In(1)),
            ]
        );
        assert_eq!(map[neg.index()], None);
        assert_eq!(map[mul.index()], None);
        // Boundaries stayed put.
        assert!(matches!(g.kind(map[ld.index()].unwrap()), OpKind::Load { .. }));
        assert!(matches!(g.kind(map[st.index()].unwrap()), OpKind::Store { .. }));
    }

    /// A producer fanning out to two consumers is not a chain link.
    #[test]
    fn fanout_terminates_chains() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let a = g.add(OpKind::Unary { op: UnOp::Neg });
        let b = g.add(OpKind::Unary { op: UnOp::Not });
        let c = g.add(OpKind::Binary { op: BinOp::Add });
        let e = g.add(OpKind::End { inputs: 2 });
        connect(&mut g, (s, 0), (ld, 0));
        connect(&mut g, (ld, 0), (a, 0));
        connect(&mut g, (a, 0), (b, 0)); // a fans out: not fusible
        connect(&mut g, (a, 0), (c, 0));
        connect(&mut g, (b, 0), (c, 1));
        connect(&mut g, (c, 0), (e, 0));
        connect(&mut g, (ld, 1), (e, 1));
        crate::validate::validate(&g).unwrap();
        let (stats, _) = fuse(&mut g);
        // b → c is the only link (c joins two producers, so only one of
        // its feeders can claim it; a fans out and claims nothing).
        assert_eq!(stats.chains, 1);
        assert_eq!(stats.ops_fused, 1);
        crate::validate::validate(&g).unwrap();
    }

    /// Switches, merges, loop operators, and memory ops never fuse.
    #[test]
    fn boundaries_are_respected() {
        use cf2df_cfg::LoopId;
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let sw = g.add(OpKind::Switch);
        g.set_imm(sw, 1, 1);
        let m = g.add(OpKind::Merge);
        let le = g.add(OpKind::LoopEntry { loop_id: LoopId(0) });
        let lx = g.add(OpKind::LoopExit { loop_id: LoopId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        connect(&mut g, (s, 0), (sw, 0));
        connect(&mut g, (sw, 0), (m, 0));
        connect(&mut g, (m, 0), (le, 0));
        connect(&mut g, (le, 0), (lx, 0));
        connect(&mut g, (lx, 0), (e, 0));
        let before = g.len();
        let (stats, _) = fuse(&mut g);
        assert_eq!(stats, FuseStats::default());
        assert_eq!(g.len(), before);
    }

    /// A two-variable loop: the counter's loop-entry feeds both the
    /// compare and its switch (fan-out → left alone), while the
    /// accumulator's loop-entry feeds only its switch — that pair fuses
    /// into one `LoopSwitch` compound steering by the shared predicate.
    #[test]
    fn loop_entry_switch_pair_fuses() {
        use cf2df_cfg::LoopId;
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld_i = g.add(OpKind::Load { var: VarId(0) });
        let ld_x = g.add(OpKind::Load { var: VarId(1) });
        let le_i = g.add(OpKind::LoopEntry { loop_id: LoopId(0) });
        let le_x = g.add(OpKind::LoopEntry { loop_id: LoopId(0) });
        let cmp = g.add(OpKind::Binary { op: BinOp::Lt });
        g.set_imm(cmp, 1, 10);
        let sw_i = g.add(OpKind::Switch);
        let sw_x = g.add(OpKind::Switch);
        let inc = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(inc, 1, 1);
        let dbl = g.add(OpKind::Binary { op: BinOp::Add });
        let lx_i = g.add(OpKind::LoopExit { loop_id: LoopId(0) });
        let lx_x = g.add(OpKind::LoopExit { loop_id: LoopId(0) });
        let e = g.add(OpKind::End { inputs: 2 });
        connect(&mut g, (s, 0), (ld_i, 0));
        connect(&mut g, (ld_i, 1), (ld_x, 0));
        connect(&mut g, (ld_i, 0), (le_i, 0));
        connect(&mut g, (ld_x, 0), (le_x, 0));
        connect(&mut g, (le_i, 0), (cmp, 0));
        connect(&mut g, (le_i, 0), (sw_i, 0));
        connect(&mut g, (le_x, 0), (sw_x, 0));
        connect(&mut g, (cmp, 0), (sw_i, 1));
        connect(&mut g, (cmp, 0), (sw_x, 1));
        connect(&mut g, (sw_i, 0), (inc, 0));
        connect(&mut g, (sw_x, 0), (dbl, 0));
        connect(&mut g, (sw_x, 0), (dbl, 1));
        connect(&mut g, (inc, 0), (le_i, 1));
        connect(&mut g, (dbl, 0), (le_x, 1));
        connect(&mut g, (sw_i, 1), (lx_i, 0));
        connect(&mut g, (sw_x, 1), (lx_x, 0));
        connect(&mut g, (lx_i, 0), (e, 0));
        connect(&mut g, (lx_x, 0), (e, 1));
        crate::validate::validate(&g).unwrap();

        let before = g.len();
        let (stats, map) = fuse(&mut g);
        assert_eq!(stats.pairs, 1);
        assert_eq!(stats.chains, 0);
        assert_eq!(stats.ops_fused, 1);
        assert_eq!(g.len(), before - 1, "the fused switch is compacted away");
        crate::validate::validate(&g).unwrap();
        // The entry slot holds the compound; the fused switch is gone,
        // the fanned-out pair is untouched.
        let c = map[le_x.index()].expect("entry survives as the compound");
        assert!(matches!(g.kind(c), OpKind::LoopSwitch { loop_id: LoopId(0) }));
        assert_eq!(map[sw_x.index()], None);
        assert!(matches!(g.kind(map[le_i.index()].unwrap()), OpKind::LoopEntry { .. }));
        assert!(matches!(g.kind(map[sw_i.index()].unwrap()), OpKind::Switch));
        // Compound wiring: continue-arm to the body, exit-arm to the
        // loop exit, predicate into port 2, backedge intact on port 1.
        let arcs = g.arcs();
        let dbl2 = map[dbl.index()].unwrap();
        let lx2 = map[lx_x.index()].unwrap();
        let cmp2 = map[cmp.index()].unwrap();
        assert!(arcs.iter().any(|a| a.from == Port::new(c, 0) && a.to.op == dbl2));
        assert!(arcs.iter().any(|a| a.from == Port::new(c, 1) && a.to == Port::new(lx2, 0)));
        assert!(arcs.iter().any(|a| a.from.op == cmp2 && a.to == Port::new(c, 2)));
        assert!(arcs.iter().any(|a| a.from.op == dbl2 && a.to == Port::new(c, 1)));
    }

    /// A loop-entry whose predicate arrives as an immediate on the
    /// switch, or whose switch data port is fed twice, stays unfused.
    #[test]
    fn pairing_requires_plain_predicate_and_sole_feeder() {
        use cf2df_cfg::LoopId;
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let le = g.add(OpKind::LoopEntry { loop_id: LoopId(0) });
        let sw = g.add(OpKind::Switch);
        g.set_imm(sw, 1, 0); // immediate predicate: exit at once
        let lx = g.add(OpKind::LoopExit { loop_id: LoopId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        connect(&mut g, (s, 0), (ld, 0));
        connect(&mut g, (ld, 0), (le, 0));
        connect(&mut g, (le, 0), (sw, 0));
        connect(&mut g, (sw, 0), (le, 1));
        connect(&mut g, (sw, 1), (lx, 0));
        connect(&mut g, (lx, 0), (e, 0));
        crate::validate::validate(&g).unwrap();
        let (stats, _) = fuse(&mut g);
        assert_eq!(stats.pairs, 0, "immediate predicates disqualify the pair");
    }

    /// Two chains sharing a would-be member stay disjoint; the loser's
    /// chain simply ends earlier and still computes the same value.
    #[test]
    fn competing_chains_stay_disjoint() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let a1 = g.add(OpKind::Unary { op: UnOp::Neg });
        let a2 = g.add(OpKind::Unary { op: UnOp::Not });
        let b1 = g.add(OpKind::Unary { op: UnOp::Neg });
        let b2 = g.add(OpKind::Unary { op: UnOp::Not });
        let join = g.add(OpKind::Binary { op: BinOp::Add });
        let e = g.add(OpKind::End { inputs: 2 });
        connect(&mut g, (s, 0), (ld, 0));
        connect(&mut g, (ld, 0), (a1, 0));
        connect(&mut g, (a1, 0), (a2, 0));
        connect(&mut g, (a2, 0), (join, 0));
        connect(&mut g, (ld, 0), (b1, 0));
        connect(&mut g, (b1, 0), (b2, 0));
        connect(&mut g, (b2, 0), (join, 1));
        connect(&mut g, (join, 0), (e, 0));
        connect(&mut g, (ld, 1), (e, 1));
        crate::validate::validate(&g).unwrap();
        let (stats, _) = fuse(&mut g);
        // One arm's chain reaches through the join; the other stops
        // before it. Either way both chains fuse and stay disjoint.
        assert_eq!(stats.chains, 2);
        assert_eq!(stats.ops_fused, 3);
        crate::validate::validate(&g).unwrap();
    }
}
