//! Graphviz DOT export: access-token arcs are drawn dotted, as in the
//! paper's figures.

use crate::graph::{ArcKind, Dfg};
use crate::op::OpKind;
use std::fmt::Write as _;

/// Render a dataflow graph in DOT format.
pub fn dfg_to_dot(g: &Dfg, title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{title}\" {{");
    let _ = writeln!(s, "  node [fontname=\"monospace\"];");
    for op in g.op_ids() {
        let mut label = g.kind(op).mnemonic();
        if !g.label(op).is_empty() {
            label.push_str("\\n");
            label.push_str(g.label(op));
        }
        let shape = match g.kind(op) {
            OpKind::Switch | OpKind::CaseSwitch { .. } => "invtriangle",
            OpKind::Merge => "triangle",
            OpKind::Synch { .. } | OpKind::End { .. } => "house",
            OpKind::Load { .. }
            | OpKind::Store { .. }
            | OpKind::LoadIdx { .. }
            | OpKind::StoreIdx { .. }
            | OpKind::IstLoad { .. }
            | OpKind::IstStore { .. } => "box3d",
            OpKind::LoopEntry { .. }
            | OpKind::LoopSwitch { .. }
            | OpKind::LoopExit { .. }
            | OpKind::PrevIter { .. }
            | OpKind::IterIndex { .. } => {
                "hexagon"
            }
            _ => "box",
        };
        let _ = writeln!(
            s,
            "  op{} [label=\"{}\", shape={}];",
            op.0,
            label.replace('"', "\\\""),
            shape
        );
    }
    for a in g.arcs() {
        let style = match a.kind {
            ArcKind::Access => ", style=dotted",
            ArcKind::Value => "",
        };
        let label = match g.kind(a.from.op) {
            OpKind::Switch => {
                if a.from.port == 0 {
                    "T".to_owned()
                } else {
                    "F".to_owned()
                }
            }
            OpKind::CaseSwitch { arms } => {
                if a.from.port as u32 + 1 == *arms {
                    "else".to_owned()
                } else {
                    a.from.port.to_string()
                }
            }
            OpKind::LoopSwitch { .. } => {
                if a.from.port == 0 {
                    "next".to_owned()
                } else {
                    "exit".to_owned()
                }
            }
            _ => String::new(),
        };
        let _ = writeln!(
            s,
            "  op{} -> op{} [label=\"{}\"{}];",
            a.from.op.0, a.to.op.0, label, style
        );
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Port;
    use cf2df_cfg::VarId;

    #[test]
    fn dot_renders_dotted_access_arcs() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let l = g.add_labeled(OpKind::Load { var: VarId(0) }, "x line");
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(l, 0), ArcKind::Access);
        g.connect(Port::new(l, 1), Port::new(e, 0), ArcKind::Access);
        let dot = dfg_to_dot(&g, "t");
        assert_eq!(dot.matches("style=dotted").count(), 2);
        assert!(dot.contains("x line"));
        assert!(dot.contains("box3d"));
    }

    #[test]
    fn switch_arcs_labelled_by_direction() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let sw = g.add(OpKind::Switch);
        let e = g.add(OpKind::End { inputs: 2 });
        g.set_imm(sw, 1, 1);
        g.connect(Port::new(s, 0), Port::new(sw, 0), ArcKind::Access);
        g.connect(Port::new(sw, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(sw, 1), Port::new(e, 1), ArcKind::Access);
        let dot = dfg_to_dot(&g, "t");
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("label=\"F\""));
    }
}
