//! Graph-construction helpers.

use crate::graph::{ArcKind, Dfg, OpId, Port};
use crate::op::OpKind;

/// Build a binary synch tree (Fig 2) over the given source ports, returning
/// the output port of its root. With zero sources returns `None`; with one
/// source the source itself is returned (no operator is created) —
/// mirroring the paper's "a join with a single source is equivalent to no
/// operator".
pub fn synch_tree(g: &mut Dfg, sources: &[Port], kind: ArcKind) -> Option<Port> {
    match sources.len() {
        0 => None,
        1 => Some(sources[0]),
        _ => {
            let mut level: Vec<Port> = sources.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 1 {
                        next.push(pair[0]);
                    } else {
                        let s = g.add(OpKind::Synch { inputs: 2 });
                        g.connect(pair[0], Port::new(s, 0), kind);
                        g.connect(pair[1], Port::new(s, 1), kind);
                        next.push(Port::new(s, 0));
                    }
                }
                level = next;
            }
            Some(level[0])
        }
    }
}

/// Build a flat n-ary synch operator over the sources (used where tree
/// shape does not matter); same degenerate cases as [`synch_tree`].
pub fn synch_flat(g: &mut Dfg, sources: &[Port], kind: ArcKind) -> Option<Port> {
    match sources.len() {
        0 => None,
        1 => Some(sources[0]),
        n => {
            let s = g.add(OpKind::Synch { inputs: n as u32 });
            for (i, &src) in sources.iter().enumerate() {
                g.connect(src, Port::new(s, i), kind);
            }
            Some(Port::new(s, 0))
        }
    }
}

/// Create a merge over the sources, returning its output port. A single
/// source is returned unchanged (no operator); zero sources returns `None`.
pub fn merge(g: &mut Dfg, sources: &[Port], kind: ArcKind) -> Option<Port> {
    match sources.len() {
        0 => None,
        1 => Some(sources[0]),
        _ => {
            let m = g.add(OpKind::Merge);
            for &src in sources {
                g.connect(src, Port::new(m, 0), kind);
            }
            Some(Port::new(m, 0))
        }
    }
}

/// Count the operators a synch tree over `n` sources creates.
pub fn synch_tree_size(n: usize) -> usize {
    n.saturating_sub(1)
}

/// Convenience: id of a freshly added operator's `i`-th output port.
pub fn out(op: OpId, i: usize) -> Port {
    Port::new(op, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(g: &mut Dfg, n: usize) -> Vec<Port> {
        // Use Identity ops as dummy sources.
        (0..n)
            .map(|_| Port::new(g.add(OpKind::Identity), 0))
            .collect()
    }

    #[test]
    fn synch_tree_sizes() {
        for n in [2usize, 3, 4, 5, 8, 13] {
            let mut g = Dfg::new();
            let srcs = sources(&mut g, n);
            let before = g.len();
            let root = synch_tree(&mut g, &srcs, ArcKind::Access).unwrap();
            assert_eq!(g.len() - before, synch_tree_size(n), "n={n}");
            // Root is a synch op output.
            assert!(matches!(g.kind(root.op), OpKind::Synch { inputs: 2 }));
            // Every source feeds exactly one arc.
            assert_eq!(g.arc_count(), 2 * (g.len() - before));
        }
    }

    #[test]
    fn synch_tree_degenerate_cases() {
        let mut g = Dfg::new();
        assert!(synch_tree(&mut g, &[], ArcKind::Access).is_none());
        let srcs = sources(&mut g, 1);
        let r = synch_tree(&mut g, &srcs, ArcKind::Access).unwrap();
        assert_eq!(r, srcs[0]);
        assert_eq!(g.arc_count(), 0);
    }

    #[test]
    fn flat_synch_single_op() {
        let mut g = Dfg::new();
        let srcs = sources(&mut g, 5);
        let r = synch_flat(&mut g, &srcs, ArcKind::Access).unwrap();
        assert!(matches!(g.kind(r.op), OpKind::Synch { inputs: 5 }));
        assert_eq!(g.arc_count(), 5);
    }

    #[test]
    fn merge_helper() {
        let mut g = Dfg::new();
        let srcs = sources(&mut g, 3);
        let r = merge(&mut g, &srcs, ArcKind::Value).unwrap();
        assert!(matches!(g.kind(r.op), OpKind::Merge));
        assert_eq!(g.arc_count(), 3);
        // Single source: pass-through.
        let one = sources(&mut g, 1);
        assert_eq!(merge(&mut g, &one, ArcKind::Value), Some(one[0]));
    }
}
