//! Structural validation of dataflow graphs.
//!
//! The translations must produce graphs in which every operator can
//! actually fire: every non-immediate input port is fed by exactly one arc
//! (merge-like ports: one or more), and every operator is reachable from
//! `Start`. Violations here are translator bugs, so the checks are strict.

use crate::graph::{Dfg, OpId};
use crate::op::OpKind;
use std::fmt;

/// A structural defect in a dataflow graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DfgError {
    /// There is not exactly one `Start` operator.
    StartCount(usize),
    /// There is not exactly one `End` operator.
    EndCount(usize),
    /// An input port has no arc and no immediate: the operator can never
    /// fire.
    UnfedInput(OpId, usize),
    /// A non-merge-like input port is fed by more than one arc: tokens
    /// would collide.
    MultiplyFedInput(OpId, usize),
    /// An arc feeds a port that carries an immediate.
    ArcIntoImmediate(OpId, usize),
    /// Every input port of the operator is immediate: it would either never
    /// fire or fire unboundedly.
    AllImmediate(OpId),
    /// The operator is not reachable from `Start` along arcs.
    Unreachable(OpId),
    /// The 32-bit operator id space is exhausted: a graph already holding
    /// `ops` operators cannot assign another id.
    OpSpaceExhausted {
        /// Number of operators already in the graph.
        ops: usize,
    },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::StartCount(n) => write!(f, "expected 1 Start operator, found {n}"),
            DfgError::EndCount(n) => write!(f, "expected 1 End operator, found {n}"),
            DfgError::UnfedInput(op, p) => write!(f, "input port {p} of {op:?} is unfed"),
            DfgError::MultiplyFedInput(op, p) => {
                write!(f, "non-merge input port {p} of {op:?} fed by multiple arcs")
            }
            DfgError::ArcIntoImmediate(op, p) => {
                write!(f, "arc feeds immediate port {p} of {op:?}")
            }
            DfgError::AllImmediate(op) => write!(f, "{op:?} has only immediate inputs"),
            DfgError::Unreachable(op) => write!(f, "{op:?} unreachable from Start"),
            DfgError::OpSpaceExhausted { ops } => {
                write!(f, "operator id space exhausted at {ops} operators")
            }
        }
    }
}

impl std::error::Error for DfgError {}

/// Validate a dataflow graph; returns every defect found.
pub fn validate(g: &Dfg) -> Result<(), Vec<DfgError>> {
    let mut errs = Vec::new();
    let starts = g
        .op_ids()
        .filter(|&o| matches!(g.kind(o), OpKind::Start))
        .count();
    if starts != 1 {
        errs.push(DfgError::StartCount(starts));
    }
    let ends = g
        .op_ids()
        .filter(|&o| matches!(g.kind(o), OpKind::End { .. }))
        .count();
    if ends != 1 {
        errs.push(DfgError::EndCount(ends));
    }

    let ins = g.in_arcs();
    for op in g.op_ids() {
        let kind = g.kind(op);
        let n_in = kind.n_inputs();
        let mut live_inputs = 0usize;
        for (p, fed_arcs) in ins[op.index()].iter().enumerate().take(n_in) {
            let fed = fed_arcs.len();
            let imm = g.imm(op, p).is_some();
            if imm {
                if fed > 0 {
                    errs.push(DfgError::ArcIntoImmediate(op, p));
                }
                continue;
            }
            live_inputs += 1;
            if fed == 0 {
                errs.push(DfgError::UnfedInput(op, p));
            } else if fed > 1 && !kind.is_merge_like(p) {
                errs.push(DfgError::MultiplyFedInput(op, p));
            }
        }
        if n_in > 0 && live_inputs == 0 {
            errs.push(DfgError::AllImmediate(op));
        }
    }

    // Reachability from Start along arcs (any port).
    if let Ok(start) = g.start() {
        let mut adj: Vec<Vec<OpId>> = vec![Vec::new(); g.len()];
        for a in g.arcs() {
            adj[a.from.op.index()].push(a.to.op);
        }
        let mut seen = vec![false; g.len()];
        seen[start.index()] = true;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &s in &adj[v.index()] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        for op in g.op_ids() {
            if !seen[op.index()] {
                errs.push(DfgError::Unreachable(op));
            }
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// The paper's redundant-switch criterion (§4): a switch is *redundant* if
/// both of its outputs feed (only) the same merge — eliminating it and
/// wiring its input straight to the merge's output changes no behaviour.
/// The optimized construction must produce none of these.
pub fn redundant_switches(g: &Dfg) -> Vec<OpId> {
    let outs = g.out_arcs();
    let mut redundant = Vec::new();
    for op in g.op_ids() {
        if !matches!(g.kind(op), OpKind::Switch) {
            continue;
        }
        let t_arcs = &outs[op.index()][0];
        let f_arcs = &outs[op.index()][1];
        if t_arcs.len() != 1 || f_arcs.len() != 1 {
            continue;
        }
        let t_to = g.arcs()[t_arcs[0]].to;
        let f_to = g.arcs()[f_arcs[0]].to;
        if t_to.op == f_to.op
            && t_to.port == f_to.port
            && matches!(g.kind(t_to.op), OpKind::Merge)
        {
            redundant.push(op);
        }
    }
    redundant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ArcKind, Port};
    use cf2df_cfg::VarId;

    fn start_end(g: &mut Dfg) -> (OpId, OpId) {
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        (s, e)
    }

    #[test]
    fn minimal_valid_graph() {
        let mut g = Dfg::new();
        let (s, e) = start_end(&mut g);
        g.connect(Port::new(s, 0), Port::new(e, 0), ArcKind::Access);
        validate(&g).unwrap();
    }

    #[test]
    fn missing_end_detected() {
        let mut g = Dfg::new();
        g.add(OpKind::Start);
        let errs = validate(&g).unwrap_err();
        assert!(errs.contains(&DfgError::EndCount(0)));
    }

    #[test]
    fn unfed_input_detected() {
        let mut g = Dfg::new();
        let (s, e) = start_end(&mut g);
        let l = g.add(OpKind::Load { var: VarId(0) });
        g.connect(Port::new(s, 0), Port::new(e, 0), ArcKind::Access);
        let errs = validate(&g).unwrap_err();
        assert!(errs.contains(&DfgError::UnfedInput(l, 0)));
        assert!(errs.contains(&DfgError::Unreachable(l)));
    }

    #[test]
    fn multiply_fed_non_merge_detected() {
        let mut g = Dfg::new();
        let (s, e) = start_end(&mut g);
        let id = g.add(OpKind::Identity);
        g.connect(Port::new(s, 0), Port::new(id, 0), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(id, 0), ArcKind::Access);
        g.connect(Port::new(id, 0), Port::new(e, 0), ArcKind::Access);
        let errs = validate(&g).unwrap_err();
        assert!(errs.contains(&DfgError::MultiplyFedInput(id, 0)));
    }

    #[test]
    fn merge_accepts_multiple_arcs() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let m = g.add(OpKind::Merge);
        g.connect(Port::new(s, 0), Port::new(m, 0), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(m, 0), ArcKind::Access);
        g.connect(Port::new(m, 0), Port::new(e, 0), ArcKind::Access);
        validate(&g).unwrap();
    }

    #[test]
    fn arc_into_immediate_detected() {
        let mut g = Dfg::new();
        let (s, e) = start_end(&mut g);
        let st = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st, 0, 42);
        g.connect(Port::new(s, 0), Port::new(st, 0), ArcKind::Value); // feeds imm port!
        g.connect(Port::new(s, 0), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        let errs = validate(&g).unwrap_err();
        assert!(errs.contains(&DfgError::ArcIntoImmediate(st, 0)));
    }

    #[test]
    fn all_immediate_operator_detected() {
        let mut g = Dfg::new();
        let (s, e) = start_end(&mut g);
        g.connect(Port::new(s, 0), Port::new(e, 0), ArcKind::Access);
        let id = g.add(OpKind::Identity);
        g.set_imm(id, 0, 1);
        let errs = validate(&g).unwrap_err();
        assert!(errs.contains(&DfgError::AllImmediate(id)));
    }

    #[test]
    fn redundant_switch_recognized() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let sw = g.add(OpKind::Switch);
        let m = g.add(OpKind::Merge);
        g.set_imm(sw, 1, 1); // constant predicate, irrelevant here
        g.connect(Port::new(s, 0), Port::new(sw, 0), ArcKind::Access);
        g.connect(Port::new(sw, 0), Port::new(m, 0), ArcKind::Access);
        g.connect(Port::new(sw, 1), Port::new(m, 0), ArcKind::Access);
        g.connect(Port::new(m, 0), Port::new(e, 0), ArcKind::Access);
        assert_eq!(redundant_switches(&g), vec![sw]);
    }

    #[test]
    fn useful_switch_not_flagged() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 2 });
        let sw = g.add(OpKind::Switch);
        g.set_imm(sw, 1, 1);
        g.connect(Port::new(s, 0), Port::new(sw, 0), ArcKind::Access);
        g.connect(Port::new(sw, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(sw, 1), Port::new(e, 1), ArcKind::Access);
        assert!(redundant_switches(&g).is_empty());
    }
}
