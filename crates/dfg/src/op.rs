//! Dataflow operators.
//!
//! Firing discipline (§2.2): an operator fires when a token is present on
//! every input port — except *merge-like* ports, where a token on any one
//! arc fires the operator immediately. Input ports may instead carry an
//! immediate constant (a "literal slot", as on real explicit-token-store
//! machines), in which case no arc feeds them.

use cf2df_cfg::{BinOp, LoopId, UnOp, VarId};

/// Where a micro-program step reads an operand from (see
/// [`OpKind::Macro`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MacroSrc {
    /// The value produced by the previous step of the micro-program
    /// (the chain value). Invalid in step 0, which has no predecessor.
    Chain,
    /// The macro-op's external input port with this index.
    In(u16),
    /// An immediate constant baked into the step.
    Imm(i64),
}

/// One step of a macro-op's straight-line micro-program. Each step
/// produces exactly one value; the last step's value is the macro-op's
/// output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MacroStep {
    /// Unary arithmetic/logic over one operand.
    Un(UnOp, MacroSrc),
    /// Binary arithmetic/logic over two operands.
    Bin(BinOp, MacroSrc, MacroSrc),
    /// Forward an operand unchanged (a fused Identity or Gate: the
    /// gating token was already consumed as a macro input port).
    Fwd(MacroSrc),
    /// Produce the dummy value 0 (a fused Synch: its operand tokens are
    /// macro input ports consumed purely for synchronization).
    Zero,
}

/// Evaluate a macro-op micro-program over the values deposited on its
/// external input ports. Shared by both backends so a macro firing is
/// bit-identical in the simulator and the threaded executor.
pub fn macro_eval(steps: &[MacroStep], vals: &[i64]) -> i64 {
    let mut acc = 0i64;
    for step in steps {
        let read = |src: MacroSrc| match src {
            MacroSrc::Chain => acc,
            MacroSrc::In(p) => vals[p as usize],
            MacroSrc::Imm(c) => c,
        };
        acc = match *step {
            MacroStep::Un(op, a) => op.eval(read(a)),
            MacroStep::Bin(op, a, b) => op.eval(read(a), read(b)),
            MacroStep::Fwd(a) => read(a),
            MacroStep::Zero => 0,
        };
    }
    acc
}

/// The kind of a dataflow operator. Input/output port layouts are listed
/// with each variant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// The unique source. No inputs; one output port. The machine seeds one
    /// initial token on *each arc* leaving the output port (one per
    /// circulating token line).
    Start,
    /// The unique sink: an `inputs`-ary rendezvous (the paper treats `end`
    /// as a use of every variable). When it fires, execution halts.
    End {
        /// Number of input ports.
        inputs: u32,
    },
    /// Unary arithmetic/logic.
    Unary {
        /// The operator.
        op: UnOp,
    },
    /// Binary arithmetic/logic. In: `[lhs, rhs]`; out: `[result]`.
    Binary {
        /// The operator.
        op: BinOp,
    },
    /// Fig 2's `switch`: in: `[data, pred]`; out: `[true, false]`. The data
    /// token is forwarded to the output selected by the predicate.
    Switch,
    /// Multi-way switch (footnote 3): in: `[data, selector]`; out:
    /// `arms` ports. The data token goes to port `selector` when
    /// `0 ≤ selector < arms-1`, otherwise to the last (default) port.
    CaseSwitch {
        /// Number of output arms (≥ 2), the last being the default.
        arms: u32,
    },
    /// Fig 2's `merge`: one merge-like input port (any number of arcs);
    /// out: `[data]`. A token arriving on any arc is forwarded.
    Merge,
    /// Fig 2's `synch tree`, realized n-ary: in: `inputs` ports; out: one
    /// dummy token once all inputs have arrived.
    Synch {
        /// Number of input ports.
        inputs: u32,
    },
    /// Forward a token unchanged (wiring convenience).
    Identity,
    /// Emit the data input when the trigger arrives: in `[data, trigger]`;
    /// out `[data]`. Used by the memory-elimination transform (§6.1) to
    /// produce a variable's new value-token exactly once per execution of
    /// its assignment (the old value-token is the trigger).
    Gate,
    /// Scalar load. In: `[access]`; out: `[value, access]`. Split-phase:
    /// the access token is propagated only when the memory responds.
    Load {
        /// Variable whose cell is read.
        var: VarId,
    },
    /// Scalar store. In: `[value, access]`; out: `[access]`.
    Store {
        /// Variable whose cell is written.
        var: VarId,
    },
    /// Array-element load. In: `[index, access]`; out: `[value, access]`.
    LoadIdx {
        /// Array variable.
        var: VarId,
    },
    /// Array-element store. In: `[index, value, access]`; out: `[access]`.
    StoreIdx {
        /// Array variable.
        var: VarId,
    },
    /// I-structure read (§6.3 write-once arrays). In: `[index]`; out:
    /// `[value]`. Reads issued before the write are deferred by the memory.
    IstLoad {
        /// Array variable backed by I-structure cells.
        var: VarId,
    },
    /// I-structure write. In: `[index, value]`; out: `[done]`. Writing a
    /// full cell is an error.
    IstStore {
        /// Array variable backed by I-structure cells.
        var: VarId,
    },
    /// Loop-entry operator (§3). In: `[from-outside, from-backedge]`, both
    /// merge-like; out: `[data]`. A token from outside acquires a fresh
    /// iteration-0 tag for this loop; a token from the backedge advances to
    /// the next iteration's tag.
    LoopEntry {
        /// The loop whose iteration tags this operator manages.
        loop_id: LoopId,
    },
    /// Loop-exit operator (§3). In: `[data]`; out: `[data]` with the
    /// innermost iteration tag (which must belong to `loop_id`) stripped.
    LoopExit {
        /// The loop whose tag is stripped.
        loop_id: LoopId,
    },
    /// Retag a token from iteration `i` to iteration `i-1` of the same
    /// loop (the backward synchronization link in the array-store
    /// parallelization of Fig 14: the completion chain of iteration `i+1`
    /// is handed to iteration `i`). In: `[data]`; out: `[data]`. A token
    /// tagged iteration 0 is a translation bug and faults.
    PrevIter {
        /// The loop whose iteration tag is decremented.
        loop_id: LoopId,
    },
    /// Materialize the current iteration index as a value: a token tagged
    /// `(p, l, i)` triggers the output value `i` under the same tag.
    /// In: `[trigger]`; out: `[index]`.
    IterIndex {
        /// The loop whose iteration index is read.
        loop_id: LoopId,
    },
    /// A fused loop-entry/switch pair (the fusion pass's second rule):
    /// the per-variable circulation step `loop-entry → switch` collapsed
    /// into one compound actor. In: `[from-outside, from-backedge,
    /// pred]` — ports 0 and 1 are merge-like and retag exactly as the
    /// loop-entry would (outside → iteration 0, backedge → next
    /// iteration); the retagged data then waits for the predicate (port
    /// 2, already at the iteration tag) in a single rendezvous. Out:
    /// `[continue, exit]` — one firing steers the data token like the
    /// switch (pred ≠ 0 → continue). Tag allocation is unchanged; the
    /// loop-entry's separate output token and firing are elided.
    LoopSwitch {
        /// The loop whose iteration tags this operator manages.
        loop_id: LoopId,
    },
    /// A compound actor produced by the fusion pass
    /// ([`crate::fuse`]): a maximal linear chain of strict same-tag
    /// operators collapsed into one node carrying a straight-line
    /// micro-program. In: `inputs` strict ports (the union of the
    /// chain's external live inputs); out: `[result]` — the last step's
    /// value. Firing evaluates every step at once: no intermediate
    /// tokens, no rendezvous slots, no scheduler round-trips.
    Macro {
        /// Number of external input ports.
        inputs: u32,
        /// The micro-program, in chain order; step 0 is the chain head.
        steps: Vec<MacroStep>,
    },
}

impl OpKind {
    /// Number of input ports.
    pub fn n_inputs(&self) -> usize {
        match self {
            OpKind::Start => 0,
            OpKind::End { inputs } | OpKind::Synch { inputs } => *inputs as usize,
            OpKind::Macro { inputs, .. } => *inputs as usize,
            OpKind::Unary { .. } | OpKind::Identity | OpKind::Merge => 1,
            OpKind::Load { .. } | OpKind::LoopExit { .. } => 1,
            OpKind::PrevIter { .. } | OpKind::IterIndex { .. } => 1,
            OpKind::IstLoad { .. } => 1,
            OpKind::Binary { .. } | OpKind::Switch | OpKind::Gate => 2,
            OpKind::CaseSwitch { .. } => 2,
            OpKind::Store { .. } | OpKind::LoadIdx { .. } | OpKind::IstStore { .. } => 2,
            OpKind::LoopEntry { .. } => 2,
            OpKind::StoreIdx { .. } | OpKind::LoopSwitch { .. } => 3,
        }
    }

    /// Number of output ports.
    pub fn n_outputs(&self) -> usize {
        match self {
            OpKind::Start => 1,
            OpKind::End { .. } => 0,
            OpKind::Switch | OpKind::LoopSwitch { .. } => 2,
            OpKind::CaseSwitch { arms } => *arms as usize,
            OpKind::Load { .. } | OpKind::LoadIdx { .. } => 2,
            _ => 1,
        }
    }

    /// Is input port `port` merge-like (fires on any single arc, may have
    /// several arcs)?
    pub fn is_merge_like(&self, port: usize) -> bool {
        match self {
            OpKind::Merge => port == 0,
            OpKind::LoopEntry { .. } | OpKind::LoopSwitch { .. } => port <= 1,
            _ => false,
        }
    }

    /// Is this a memory operation (load/store on the multiply-written
    /// store, or an I-structure operation)?
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            OpKind::Load { .. }
                | OpKind::Store { .. }
                | OpKind::LoadIdx { .. }
                | OpKind::StoreIdx { .. }
                | OpKind::IstLoad { .. }
                | OpKind::IstStore { .. }
        )
    }

    /// Is this a store (writes memory)?
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            OpKind::Store { .. } | OpKind::StoreIdx { .. } | OpKind::IstStore { .. }
        )
    }

    /// Short mnemonic for display.
    pub fn mnemonic(&self) -> String {
        match self {
            OpKind::Start => "start".into(),
            OpKind::End { .. } => "end".into(),
            OpKind::Unary { op } => format!("un[{}]", op.symbol()),
            OpKind::Binary { op } => format!("bin[{}]", op.symbol()),
            OpKind::Switch => "switch".into(),
            OpKind::CaseSwitch { arms } => format!("case{arms}"),
            OpKind::Merge => "merge".into(),
            OpKind::Synch { inputs } => format!("synch{inputs}"),
            OpKind::Identity => "id".into(),
            OpKind::Gate => "gate".into(),
            OpKind::Load { var } => format!("load {var:?}"),
            OpKind::Store { var } => format!("store {var:?}"),
            OpKind::LoadIdx { var } => format!("load {var:?}[·]"),
            OpKind::StoreIdx { var } => format!("store {var:?}[·]"),
            OpKind::IstLoad { var } => format!("ist-load {var:?}[·]"),
            OpKind::IstStore { var } => format!("ist-store {var:?}[·]"),
            OpKind::LoopEntry { loop_id } => format!("loop-entry {loop_id:?}"),
            OpKind::LoopSwitch { loop_id } => format!("loop-switch {loop_id:?}"),
            OpKind::LoopExit { loop_id } => format!("loop-exit {loop_id:?}"),
            OpKind::PrevIter { loop_id } => format!("prev-iter {loop_id:?}"),
            OpKind::IterIndex { loop_id } => format!("iter-index {loop_id:?}"),
            OpKind::Macro { inputs, steps } => format!("macro{inputs}x{}", steps.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_counts() {
        assert_eq!(OpKind::Start.n_inputs(), 0);
        assert_eq!(OpKind::Start.n_outputs(), 1);
        assert_eq!(OpKind::End { inputs: 3 }.n_inputs(), 3);
        assert_eq!(OpKind::End { inputs: 3 }.n_outputs(), 0);
        assert_eq!(OpKind::Switch.n_inputs(), 2);
        assert_eq!(OpKind::Switch.n_outputs(), 2);
        assert_eq!(OpKind::Load { var: VarId(0) }.n_outputs(), 2);
        assert_eq!(OpKind::StoreIdx { var: VarId(0) }.n_inputs(), 3);
        assert_eq!(OpKind::Synch { inputs: 5 }.n_inputs(), 5);
        assert_eq!(OpKind::PrevIter { loop_id: LoopId(0) }.n_inputs(), 1);
        assert_eq!(OpKind::IterIndex { loop_id: LoopId(0) }.n_outputs(), 1);
    }

    #[test]
    fn merge_like_ports() {
        assert!(OpKind::Merge.is_merge_like(0));
        assert!(!OpKind::Switch.is_merge_like(0));
        let le = OpKind::LoopEntry { loop_id: LoopId(0) };
        assert!(le.is_merge_like(0));
        assert!(le.is_merge_like(1));
        assert!(!OpKind::PrevIter { loop_id: LoopId(0) }.is_merge_like(0));
        let ls = OpKind::LoopSwitch { loop_id: LoopId(0) };
        assert!(ls.is_merge_like(0));
        assert!(ls.is_merge_like(1));
        assert!(!ls.is_merge_like(2), "the predicate port is strict");
        assert_eq!(ls.n_inputs(), 3);
        assert_eq!(ls.n_outputs(), 2);
    }

    #[test]
    fn memory_classification() {
        assert!(OpKind::Load { var: VarId(0) }.is_memory());
        assert!(OpKind::IstStore { var: VarId(0) }.is_memory());
        assert!(!OpKind::Switch.is_memory());
        assert!(OpKind::Store { var: VarId(0) }.is_store());
        assert!(!OpKind::Load { var: VarId(0) }.is_store());
    }

    #[test]
    fn macro_eval_folds_the_micro_program() {
        use MacroSrc::*;
        // (in0 + in1) * 3 - in2, as a fused Binary chain.
        let steps = [
            MacroStep::Bin(BinOp::Add, In(0), In(1)),
            MacroStep::Bin(BinOp::Mul, Chain, Imm(3)),
            MacroStep::Bin(BinOp::Sub, Chain, In(2)),
        ];
        assert_eq!(macro_eval(&steps, &[4, 2, 5]), 13);
        // Head variants: unary, forward, synch.
        assert_eq!(macro_eval(&[MacroStep::Un(UnOp::Neg, In(0))], &[7]), -7);
        assert_eq!(macro_eval(&[MacroStep::Fwd(In(0))], &[9]), 9);
        assert_eq!(macro_eval(&[MacroStep::Zero], &[1, 2]), 0);
        let k = OpKind::Macro { inputs: 3, steps: steps.to_vec() };
        assert_eq!(k.n_inputs(), 3);
        assert_eq!(k.n_outputs(), 1);
        assert!(!k.is_merge_like(0));
        assert!(!k.is_memory());
        assert_eq!(k.mnemonic(), "macro3x3");
    }

    #[test]
    fn mnemonics_are_distinctive() {
        let names: Vec<String> = [
            OpKind::Start,
            OpKind::Switch,
            OpKind::Merge,
            OpKind::Load { var: VarId(1) },
            OpKind::Store { var: VarId(1) },
        ]
        .iter()
        .map(|k| k.mnemonic())
        .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
