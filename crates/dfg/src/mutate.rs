//! Seeded graph mutations for validating the certifier.
//!
//! Each mutation class injects one representative translator bug into a
//! well-formed graph. The certifier ([`crate::certify`]) must detect every
//! injected mutation — a false negative here means a class of real
//! translation bugs would ship silently. The driver is deterministic: the
//! same `(graph, class, seed)` triple always produces the same mutation.

use crate::graph::{ArcKind, Dfg, OpId, Port};
use crate::op::OpKind;

/// A class of injected translator bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationClass {
    /// Remove one arc: a token route silently disappears.
    DropArc,
    /// Move one switch-output arc to a different arm of the same switch:
    /// a conditional route is delivered under the wrong guard.
    RetargetSwitchOutput,
    /// Replace a loop-exit operator with a plain identity: iteration tags
    /// are never stripped.
    DeleteLoopExit,
    /// Replace a multi-arc merge with a strict single-input rendezvous:
    /// tokens that alternated now collide.
    SwapMergeForStrict,
}

impl MutationClass {
    /// All classes, for exhaustive harness sweeps.
    pub const ALL: [MutationClass; 4] = [
        MutationClass::DropArc,
        MutationClass::RetargetSwitchOutput,
        MutationClass::DeleteLoopExit,
        MutationClass::SwapMergeForStrict,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MutationClass::DropArc => "drop-arc",
            MutationClass::RetargetSwitchOutput => "retarget-switch-output",
            MutationClass::DeleteLoopExit => "delete-loop-exit",
            MutationClass::SwapMergeForStrict => "swap-merge-for-strict",
        }
    }
}

/// Description of an applied mutation.
#[derive(Clone, Debug)]
pub struct Mutation {
    /// The class applied.
    pub class: MutationClass,
    /// The operator (or arc endpoint) mutated.
    pub op: OpId,
    /// Human-readable description of the exact edit.
    pub description: String,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(seed: u64, len: usize) -> usize {
    debug_assert!(len > 0);
    let mut s = seed;
    (splitmix64(&mut s) % len as u64) as usize
}

/// Apply one seeded mutation of `class` to `g`. Returns `None` when the
/// graph has no candidate site for the class (e.g. no loops for
/// [`MutationClass::DeleteLoopExit`]); the graph is then unchanged.
pub fn mutate(g: &mut Dfg, class: MutationClass, seed: u64) -> Option<Mutation> {
    match class {
        MutationClass::DropArc => {
            if g.arc_count() == 0 {
                return None;
            }
            let a = g.arcs()[pick(seed, g.arc_count())];
            g.disconnect(a.from, a.to);
            Some(Mutation {
                class,
                op: a.to.op,
                description: format!(
                    "dropped arc {:?}.{} → {:?}.{}",
                    a.from.op, a.from.port, a.to.op, a.to.port
                ),
            })
        }
        MutationClass::RetargetSwitchOutput => {
            let candidates: Vec<usize> = g
                .arcs()
                .iter()
                .enumerate()
                .filter(|(_, a)| {
                    matches!(
                        g.kind(a.from.op),
                        OpKind::Switch | OpKind::CaseSwitch { .. }
                    )
                })
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let a = g.arcs()[candidates[pick(seed, candidates.len())]];
            let arms = g.kind(a.from.op).n_outputs();
            let other = Port::new(a.from.op, (a.from.port as usize + 1) % arms);
            g.disconnect(a.from, a.to);
            g.connect(other, a.to, ArcKind::Value);
            Some(Mutation {
                class,
                op: a.from.op,
                description: format!(
                    "moved arc {:?}.{} → {:?}.{} to originate from arm {}",
                    a.from.op, a.from.port, a.to.op, a.to.port, other.port
                ),
            })
        }
        MutationClass::DeleteLoopExit => {
            let exits: Vec<OpId> = g
                .op_ids()
                .filter(|&o| matches!(g.kind(o), OpKind::LoopExit { .. }))
                .collect();
            if exits.is_empty() {
                return None;
            }
            let lx = exits[pick(seed, exits.len())];
            g.set_kind(lx, OpKind::Identity);
            Some(Mutation {
                class,
                op: lx,
                description: format!("replaced loop-exit {lx:?} with identity"),
            })
        }
        MutationClass::SwapMergeForStrict => {
            let ins = g.in_arcs();
            let merges: Vec<OpId> = g
                .op_ids()
                .filter(|&o| {
                    matches!(g.kind(o), OpKind::Merge) && ins[o.index()][0].len() >= 2
                })
                .collect();
            if merges.is_empty() {
                return None;
            }
            let m = merges[pick(seed, merges.len())];
            g.set_kind(m, OpKind::Synch { inputs: 1 });
            Some(Mutation {
                class,
                op: m,
                description: format!("replaced multi-arc merge {m:?} with strict synch"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify;
    use cf2df_cfg::BinOp;

    /// Loop + diamond fixture exercising every candidate class.
    fn fixture() -> Dfg {
        let mut g = Dfg::new();
        let lid = cf2df_cfg::LoopId(0);
        let s = g.add(OpKind::Start);
        let le = g.add(OpKind::LoopEntry { loop_id: lid });
        let pred = g.add(OpKind::Binary { op: BinOp::Lt });
        g.set_imm(pred, 1, 4);
        let sw = g.add(OpKind::Switch);
        let body_pred = g.add(OpKind::Binary { op: BinOp::Eq });
        g.set_imm(body_pred, 1, 0);
        let sw2 = g.add(OpKind::Switch);
        let a0 = g.add(OpKind::Identity);
        let a1 = g.add(OpKind::Identity);
        let m = g.add(OpKind::Merge);
        let lx = g.add(OpKind::LoopExit { loop_id: lid });
        let e = g.add(OpKind::End { inputs: 1 });
        let c = |g: &mut Dfg, f: (OpId, usize), t: (OpId, usize)| {
            g.connect(Port::new(f.0, f.1), Port::new(t.0, t.1), ArcKind::Value)
        };
        c(&mut g, (s, 0), (le, 0));
        c(&mut g, (le, 0), (pred, 0));
        c(&mut g, (le, 0), (sw, 0));
        c(&mut g, (pred, 0), (sw, 1));
        // Continue arm: an inner diamond, then the backedge.
        c(&mut g, (sw, 0), (body_pred, 0));
        c(&mut g, (sw, 0), (sw2, 0));
        c(&mut g, (body_pred, 0), (sw2, 1));
        c(&mut g, (sw2, 0), (a0, 0));
        c(&mut g, (sw2, 1), (a1, 0));
        c(&mut g, (a0, 0), (m, 0));
        c(&mut g, (a1, 0), (m, 0));
        c(&mut g, (m, 0), (le, 1));
        // Exit arm.
        c(&mut g, (sw, 1), (lx, 0));
        c(&mut g, (lx, 0), (e, 0));
        g
    }

    #[test]
    fn fixture_is_certified_clean() {
        certify(&fixture()).unwrap();
    }

    #[test]
    fn every_class_has_a_candidate_and_is_detected() {
        for class in MutationClass::ALL {
            for seed in 0..16u64 {
                let mut g = fixture();
                let mutation = mutate(&mut g, class, seed)
                    .unwrap_or_else(|| panic!("{}: no candidate", class.name()));
                assert!(
                    certify(&g).is_err(),
                    "{} (seed {seed}) undetected: {}",
                    class.name(),
                    mutation.description
                );
            }
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let mut g1 = fixture();
        let mut g2 = fixture();
        let m1 = mutate(&mut g1, MutationClass::DropArc, 42).unwrap();
        let m2 = mutate(&mut g2, MutationClass::DropArc, 42).unwrap();
        assert_eq!(m1.description, m2.description);
        assert_eq!(g1.arc_count(), g2.arc_count());
    }

    #[test]
    fn classes_without_candidates_return_none() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(e, 0), ArcKind::Value);
        assert!(mutate(&mut g, MutationClass::DeleteLoopExit, 0).is_none());
        assert!(mutate(&mut g, MutationClass::SwapMergeForStrict, 0).is_none());
        assert!(mutate(&mut g, MutationClass::RetargetSwitchOutput, 0).is_none());
        assert!(mutate(&mut g, MutationClass::DropArc, 0).is_some());
    }
}
