#![warn(missing_docs)]

//! **cf2df** — umbrella crate for the *From Control Flow to Dataflow*
//! reproduction (Beck, Johnson & Pingali, Cornell TR 89-1050 / ICPP 1990).
//!
//! Re-exports the workspace crates:
//!
//! * [`lang`] — the Imp source language, parser, and CFG construction;
//! * [`mod@cfg`] — control-flow graphs, postdominators, control dependence,
//!   interval decomposition, alias structures;
//! * [`dfg`] — the dataflow-graph IR;
//! * [`core`] — the translation schemas (the paper's contribution);
//! * [`machine`] — the explicit-token-store dataflow machine simulator,
//!   the sequential von Neumann baseline, and a threaded executor;
//! * [`mod@bench`] — workload generators and the figure-reproduction harness.
//!
//! # Quickstart
//!
//! ```
//! use cf2df::core::pipeline::{translate, TranslateOptions};
//! use cf2df::machine::{run, MachineConfig};
//!
//! let parsed = cf2df::lang::parse_to_cfg("
//!     x := 0;
//!     while x < 10 do { x := x + 1; }
//! ").unwrap();
//! let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
//! let layout = cf2df::cfg::MemLayout::distinct(&t.cfg.vars);
//! let out = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
//! let x = t.cfg.vars.lookup("x").unwrap();
//! assert_eq!(out.memory[layout.base(x) as usize], 10);
//! ```

pub mod testkit;

pub use cf2df_bench as bench;
pub use cf2df_cfg as cfg;
pub use cf2df_core as core;
pub use cf2df_dfg as dfg;
pub use cf2df_lang as lang;
pub use cf2df_machine as machine;
