//! Deterministic in-house property-testing support.
//!
//! The workspace builds fully offline with zero external crates, so the
//! property suites in `tests/properties.rs` run on this harness instead
//! of `proptest`. Each test enumerates a fixed number of cases; every
//! case gets a [`Prng`](cf2df_bench::prng::Prng) seeded from a hash of
//! the test name and case index, so runs are reproducible bit-for-bit
//! across machines and the failing seed is printed on panic.
//!
//! The cargo feature `proptest` (a plain flag — it pulls in no
//! dependency) turns on *heavy mode*: every suite runs [`SCALE_HEAVY`]×
//! as many cases. Use it for soak runs:
//!
//! ```text
//! cargo test --features proptest --test properties
//! ```

use cf2df_bench::prng::Prng;

/// Case multiplier applied when the `proptest` feature is enabled.
pub const SCALE_HEAVY: usize = 8;

/// Number of cases a suite should run: `base` by default, `base *`
/// [`SCALE_HEAVY`] under `--features proptest`.
pub fn case_count(base: usize) -> usize {
    if cfg!(feature = "proptest") {
        base * SCALE_HEAVY
    } else {
        base
    }
}

/// Stable 64-bit hash of a test name and case index (FNV-1a over the
/// name, folded with the index through the same splitmix finalizer the
/// PRNG uses for seeding).
fn case_seed(name: &str, index: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Run `body` for [`case_count`]`(base)` deterministic cases.
///
/// Each case receives a fresh [`Prng`] whose seed depends only on
/// `name` and the case index. If the body panics, the case index and
/// seed are printed before the panic propagates, so the failure can be
/// replayed in isolation with [`replay`].
pub fn cases<F>(name: &str, base: usize, mut body: F)
where
    F: FnMut(&mut Prng),
{
    let n = case_count(base);
    for i in 0..n {
        let seed = case_seed(name, i);
        let mut rng = Prng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng)
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "testkit: `{name}` failed at case {i}/{n} (seed {seed:#018x}) — \
                 replay with cf2df::testkit::replay({seed:#018x}, ..)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-run a single failing case from the seed printed by [`cases`].
pub fn replay<F>(seed: u64, mut body: F)
where
    F: FnMut(&mut Prng),
{
    let mut rng = Prng::seed_from_u64(seed);
    body(&mut rng);
}

/// A printable junk string of length `0..=max_len`: mostly printable
/// ASCII, with newlines, tabs, and the occasional non-ASCII scalar —
/// the stand-in for proptest's `\PC*` regex strategy used by the
/// parser-totality suites.
pub fn junk_string(rng: &mut Prng, max_len: usize) -> String {
    let len = rng.range_usize(0, max_len + 1);
    (0..len)
        .map(|_| match rng.below(24) {
            0 => '\n',
            1 => '\t',
            2 | 3 => {
                // Any scalar below the surrogate range; fall back to
                // '\u{fffd}' for the few invalid points.
                char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
            }
            _ => (0x20 + rng.below(0x5f)) as u8 as char,
        })
        .collect()
}

/// A string of `0..max_tokens` tokens drawn from `vocab`, joined by
/// `sep` — the stand-in for proptest's token-vector strategies.
pub fn token_junk(rng: &mut Prng, vocab: &[&str], max_tokens: usize, sep: &str) -> String {
    let n = rng.range_usize(0, max_tokens);
    (0..n)
        .map(|_| *rng.pick(vocab))
        .collect::<Vec<_>>()
        .join(sep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut a = Vec::new();
        cases("tk", 5, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        cases("tk", 5, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
        let mut c = Vec::new();
        cases("tk2", 5, |rng| c.push(rng.next_u64()));
        assert_ne!(a, c, "different test names must get different streams");
    }

    #[test]
    fn junk_strings_stay_in_bounds() {
        cases("junk", 50, |rng| {
            let s = junk_string(rng, 40);
            assert!(s.chars().count() <= 40);
        });
    }

    #[test]
    fn token_junk_uses_only_vocab() {
        cases("tok", 20, |rng| {
            let s = token_junk(rng, &["a", "bb", "c"], 10, " ");
            for tok in s.split(' ').filter(|t| !t.is_empty()) {
                assert!(["a", "bb", "c"].contains(&tok), "{tok:?}");
            }
        });
    }
}
