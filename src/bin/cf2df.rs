//! `cf2df` — command-line driver: parse, translate, simulate, and compare
//! Imp programs.
//!
//! ```text
//! cf2df cfg        <file.imp> [--dot]
//! cf2df translate  <file.imp> [SCHEMA] [TRANSFORMS] [--time-passes]
//!                  [--dot | --emit <out.dfg>]
//! cf2df run-graph  <file.dfg> [MACHINE]
//! cf2df run        <file.imp> [SCHEMA] [TRANSFORMS] [MACHINE] [--trace]
//! cf2df compare    <file.imp> [MACHINE]
//! cf2df stats      <file.imp> [SCHEMA] [TRANSFORMS]
//! cf2df validate   <file.imp|file.dfg|corpus> [SCHEMA] [TRANSFORMS]
//!                  [--json] [--mutations] [--seeds <n>]
//! cf2df bench      [--quick] [--out-dir <dir>] [--no-fuse]
//! cf2df check-bench <artifact.json> [<artifact.json>…]
//!                   [--compare <old.json>] [--tolerance <frac>]
//!                   [--min-token-reduction <frac>:<workload-prefix>]
//!                   [--require-wall-leq <workload-prefix>]
//!                   [--require-inflight-speedup <factor>]
//! cf2df fuse-check [--workers <n>]
//! cf2df chaos      [--quick] [--seeds <n>] [--workers <a,b,…>]
//!                  [--programs <p1,p2,…>] [--fuel <n>] [--watchdog-ms <n>]
//! cf2df serve      [--requests <n>] [--inflight <k>] [--workers <w>]
//!                  [--quick] [SCHEMA] [TRANSFORMS] [program]
//!
//! SCHEMA:     --schema1 | --schema2 (default) | --schema3 | --optimized | --full
//! TRANSFORMS: --memelim --readpar --arraypar --forward --no-loop-control
//!             --no-fuse --istructure <array>[,<array>…]
//! MACHINE:    --processors <n> --mem-latency <n> --op-latency <n>
//! ```
//!
//! `<file.imp>` may be `-` for stdin, or the name of a built-in corpus
//! program (e.g. `running_example`, `stencil`).
//!
//! `translate --time-passes` prints a per-pass table on stderr: wall
//! time, analyses computed vs. served from the cache, and CFG/DFG sizes
//! in and out of every pipeline stage.
//!
//! `validate` runs the static translation validator and prints its
//! certification report. With the literal target `corpus`, every corpus
//! program is certified under the full option matrix — Schema 1,
//! Schema 2 (singleton cover), Schema 3 (alias-class cover), the §4
//! optimized construction, and the fully parallelized Schema 3 — and
//! the process exits non-zero on the first defect. A `.imp` file (or
//! corpus program name) is certified under the schema flags; a `.dfg`
//! file is loaded and checked against the graph-level obligations only
//! (token linearity, gated cycles, tag stripping). `--json` emits one
//! machine-readable report per line. `--mutations` additionally runs
//! the seeded mutation slice: every mutation class × `--seeds` seeds
//! (default 4) is injected into each certified-clean graph, and every
//! injected bug must be detected or the run fails.
//!
//! `chaos` runs the seeded fault-injection campaign: every corpus
//! program (or `--programs`) under every fault profile (off, perturb,
//! panics, drops, dups, mixed) at every worker count, `--seeds` seeds
//! each. Every run must either match the deterministic simulator
//! bit-for-bit or return a typed machine error within the watchdog
//! bound — no hangs, no aborts, no silent corruption. Benign profiles
//! (off, perturb) must always match. Exits non-zero on any violation.
//! `--quick` shrinks the campaign for CI smoke runs.
//!
//! `bench` runs the canonical workloads through the simulator and the
//! threaded executor at 1/2/4/8 workers and writes `BENCH_pipeline.json`,
//! `BENCH_executor.json`, `BENCH_translate.json` — the last times the
//! translation pipeline itself and records its deterministic pass/cache
//! counters — and `BENCH_throughput.json`, which measures the
//! multiplexed serve engine's requests/second at every worker count ×
//! inflight level against a back-to-back serial baseline (`--quick`
//! shrinks workloads and timing budgets for CI smoke runs; `--no-fuse`
//! benches with macro-op fusion disabled, for fused-vs-unfused
//! baselines). `check-bench` validates artifact files against the schema
//! and exits non-zero on the first invalid one; with `--compare
//! OLD.json` it additionally diffs the (single) artifact against the old
//! baseline and fails on wall-clock regressions beyond the tolerance
//! (default 0.25 = 25%, plus a 10 µs absolute floor) or on any increase
//! in deterministic counters (fired, makespan, tokens_processed).
//! `--require-wall-leq PREFIX` additionally demands that every
//! wall-clock median on workloads matching PREFIX is at or below the
//! baseline's, modulo a 20% jitter allowance (tighter than the
//! regression tolerance) — the compiled-graph acceptance gate.
//! `--require-inflight-speedup FACTOR` gates a throughput artifact (no
//! baseline needed): req/sec at inflight 4 on 4 workers must beat the
//! serial baseline by FACTOR on at least two workloads — the
//! multiplexed-serving acceptance gate.
//!
//! `serve` exercises the concurrent multi-invocation engine: it
//! translates `program` (default `running_example`), spawns one executor
//! pool of `--workers` threads, submits `--requests` independent
//! invocations with at most `--inflight` admitted concurrently, verifies
//! every result bit-for-bit against the deterministic simulator, and
//! prints the session stats and the requests/second the pool sustained.
//! Exits non-zero on any mismatch or per-request error — `--quick` is
//! the CI smoke gate.
//!
//! `stats` translates a program, lowers the certified graph to the dense
//! compiled runtime representation shared by both executors, and prints
//! its static footprint: table sizes (operator descriptors, destination
//! slots, immediates, macro micro-programs), total bytes, and the widest
//! hot-operator arity against the executors' inline rendezvous capacity.
//!
//! `fuse-check` is the macro-op fusion equivalence gate: every corpus
//! program is translated fused and unfused under each schema, both
//! graphs run through the simulator (and a threaded spot-check), and the
//! run fails unless final memory is identical and the firing accounting
//! balances exactly (`fired_unfused == fired_fused + ops_elided`).

use cf2df::cfg::{CoverStrategy, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::machine::{run, run_traced, vonneumann, MachineConfig};
use std::io::Read as _;
use std::process::exit;

fn usage() -> ! {
    eprintln!("{}", include_str!("cf2df.rs").lines()
        .skip(1)
        .take_while(|l| l.starts_with("//!"))
        .map(|l| l.trim_start_matches("//!").trim_start())
        .collect::<Vec<_>>()
        .join("\n"));
    exit(2)
}

fn load_source(arg: &str) -> String {
    if arg == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("readable stdin");
        return s;
    }
    if let Some((_, src)) = cf2df::lang::corpus::all().iter().find(|(n, _)| *n == arg) {
        return (*src).to_owned();
    }
    std::fs::read_to_string(arg).unwrap_or_else(|e| {
        eprintln!("cannot read {arg}: {e} (and it is not a corpus program)");
        exit(2)
    })
}

struct Args {
    rest: Vec<String>,
}

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.rest.iter().position(|a| a == name) {
            self.rest.remove(i);
            true
        } else {
            false
        }
    }

    fn value(&mut self, name: &str) -> Option<String> {
        let i = self.rest.iter().position(|a| a == name)?;
        if i + 1 >= self.rest.len() {
            eprintln!("{name} needs a value");
            exit(2)
        }
        let v = self.rest.remove(i + 1);
        self.rest.remove(i);
        Some(v)
    }
}

fn parse_schema(args: &mut Args) -> TranslateOptions {
    let mut opts = if args.flag("--schema1") {
        TranslateOptions::schema1()
    } else if args.flag("--full") {
        TranslateOptions::full_parallel_schema3()
    } else if args.flag("--optimized") {
        TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true)
    } else if args.flag("--schema3") {
        TranslateOptions::schema3(CoverStrategy::Singletons)
    } else {
        args.flag("--schema2");
        TranslateOptions::schema3(CoverStrategy::Singletons)
    };
    if args.flag("--memelim") {
        opts = opts.with_memory_elimination(true);
    }
    if args.flag("--readpar") {
        opts = opts.with_read_parallelization(true);
    }
    if args.flag("--arraypar") {
        opts = opts.with_array_parallelization(true);
    }
    if args.flag("--forward") {
        opts = opts.with_store_forwarding(true);
    }
    if args.flag("--no-loop-control") {
        opts = opts.with_loop_control(false);
    }
    if args.flag("--no-fuse") {
        opts = opts.with_fuse(false);
    }
    if let Some(arrays) = args.value("--istructure") {
        opts = opts.with_istructure_arrays(arrays.split(','));
    }
    opts
}

fn parse_machine(args: &mut Args) -> MachineConfig {
    let mut mc = match args.value("--processors") {
        Some(p) => MachineConfig::with_processors(p.parse().expect("numeric --processors")),
        None => MachineConfig::unbounded(),
    };
    if let Some(l) = args.value("--mem-latency") {
        mc = mc.mem_latency(l.parse().expect("numeric --mem-latency"));
    }
    if let Some(l) = args.value("--op-latency") {
        mc = mc.op_latency(l.parse().expect("numeric --op-latency"));
    }
    mc
}

/// `cf2df bench`: render the three artifacts into `out_dir`.
fn run_bench(quick: bool, fuse: bool, out_dir: &str) {
    std::fs::create_dir_all(out_dir).unwrap_or_else(|e| {
        eprintln!("cannot create {out_dir}: {e}");
        exit(2)
    });
    type Render = fn(bool, bool) -> Result<String, String>;
    let artifacts: [(&str, Render); 4] = [
        ("BENCH_pipeline.json", cf2df::bench::artifacts::pipeline_artifact),
        ("BENCH_executor.json", cf2df::bench::artifacts::executor_artifact),
        ("BENCH_translate.json", cf2df::bench::artifacts::translate_artifact),
        ("BENCH_throughput.json", cf2df::bench::artifacts::throughput_artifact),
    ];
    for (name, render) in artifacts {
        let doc = render(quick, fuse).unwrap_or_else(|e| {
            eprintln!("bench failed rendering {name}: {e}");
            exit(1)
        });
        let path = std::path::Path::new(out_dir).join(name);
        std::fs::write(&path, doc + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            exit(2)
        });
        eprintln!("wrote {}", path.display());
    }
}

/// `cf2df fuse-check`: the macro-op fusion equivalence gate. Every
/// corpus program is translated with fusion on and off under each
/// schema; both graphs run through the deterministic simulator and must
/// produce identical final memory, with the firing accounting balancing
/// exactly: `fired_unfused == fired_fused + ops_elided`. A threaded
/// spot-check (default 4 workers) guards the parallel backend's
/// compound-firing path. Exits non-zero on the first mismatch.
fn run_fuse_check(mut args: Args) {
    use cf2df::machine::parallel::run_threaded;

    let workers: usize = args
        .value("--workers")
        .map(|w| w.parse().expect("numeric --workers"))
        .unwrap_or(4);
    if !args.rest.is_empty() {
        eprintln!("fuse-check: unrecognized arguments {:?}", args.rest);
        usage();
    }

    let schemas: [(&str, TranslateOptions); 3] = [
        ("schema1", TranslateOptions::schema1()),
        ("schema2", TranslateOptions::schema2()),
        ("full", TranslateOptions::full_parallel_schema3()),
    ];
    let mut failures: Vec<String> = Vec::new();
    let mut checked = 0usize;
    let mut fired_total = (0u64, 0u64); // (unfused, fused)

    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = cf2df::lang::parse_to_cfg(src).unwrap_or_else(|e| {
            eprintln!("corpus program {name} failed to parse: {e}");
            exit(1)
        });
        for (slabel, opts) in &schemas {
            let ctx = format!("{name}/{slabel}");
            let fused = match translate(&parsed.cfg, &parsed.alias, opts) {
                Ok(t) => t,
                Err(_) => continue, // stricter schemas reject some programs
            };
            let unfused = translate(
                &parsed.cfg,
                &parsed.alias,
                &opts.clone().with_fuse(false),
            )
            .unwrap_or_else(|e| {
                eprintln!("{ctx}: unfused translation failed: {e}");
                exit(1)
            });
            let layout = MemLayout::distinct(&fused.cfg.vars);
            let run_sim = |dfg, label: &str| {
                run(dfg, &layout, MachineConfig::unbounded()).unwrap_or_else(|e| {
                    eprintln!("{ctx}: {label} simulation failed: {e}");
                    exit(1)
                })
            };
            let fo = run_sim(&fused.dfg, "fused");
            let uo = run_sim(&unfused.dfg, "unfused");
            checked += 1;
            fired_total.0 += uo.stats.fired;
            fired_total.1 += fo.stats.fired;
            if fo.memory != uo.memory || fo.ist_memory != uo.ist_memory {
                failures.push(format!("{ctx}: fusion changed observable memory"));
                continue;
            }
            if uo.stats.fired != fo.stats.fired + fo.stats.ops_elided {
                failures.push(format!(
                    "{ctx}: firing accounting broken: unfused {} != fused {} + elided {}",
                    uo.stats.fired, fo.stats.fired, fo.stats.ops_elided
                ));
                continue;
            }
            // Threaded spot-check: the compound-firing path in the
            // parallel backend must agree with the simulator.
            match run_threaded(&fused.dfg, &layout, workers) {
                Ok(par) => {
                    if par.memory != uo.memory
                        || par.ist_memory != uo.ist_memory
                        || par.fired != fo.stats.fired
                    {
                        failures.push(format!(
                            "{ctx}: threaded fused run diverged at {workers} workers"
                        ));
                    }
                }
                Err(e) => {
                    failures.push(format!("{ctx}: threaded fused run failed: {e}"))
                }
            }
        }
    }

    for f in failures.iter().take(20) {
        eprintln!("MISMATCH: {f}");
    }
    if failures.is_empty() {
        println!(
            "fuse-check: {checked} program×schema combinations equivalent \
             (fired {} unfused -> {} fused)",
            fired_total.0, fired_total.1
        );
    } else {
        eprintln!("fuse-check: {} mismatch(es) across {checked} combinations", failures.len());
        exit(1)
    }
}

/// One cell of the chaos-campaign result table.
#[derive(Default)]
struct ChaosRow {
    ok: u64,
    panics: u64,
    leaks: u64,
    collisions: u64,
    tag_exhausted: u64,
    fuel: u64,
    watchdogs: u64,
    faults_injected: u64,
}

/// `cf2df chaos`: the seeded fault-injection campaign. Every run must
/// match the simulator or return a typed error; anything else is a
/// violation and the process exits 1.
fn run_chaos(mut args: Args) {
    use cf2df::machine::parallel::run_threaded_pooled_with;
    use cf2df::machine::{ChaosConfig, ExecutorPool, MachineError, ParConfig};

    let quick = args.flag("--quick");
    let seeds: u64 = args
        .value("--seeds")
        .map(|s| s.parse().expect("numeric --seeds"))
        .unwrap_or(if quick { 2 } else { 8 });
    let workers: Vec<usize> = match args.value("--workers") {
        Some(w) => w
            .split(',')
            .map(|x| x.parse().expect("numeric --workers list"))
            .collect(),
        None if quick => vec![2, 8],
        None => vec![1, 2, 4, 8],
    };
    let only: Option<Vec<String>> = args
        .value("--programs")
        .map(|p| p.split(',').map(str::to_owned).collect());
    let fuel: u64 = args
        .value("--fuel")
        .map(|s| s.parse().expect("numeric --fuel"))
        .unwrap_or(50_000_000);
    let watchdog_ms: u64 = args
        .value("--watchdog-ms")
        .map(|s| s.parse().expect("numeric --watchdog-ms"))
        .unwrap_or(5_000);
    if !args.rest.is_empty() {
        eprintln!("chaos: unrecognized arguments {:?}", args.rest);
        usage();
    }

    type Profile = (&'static str, bool, fn(u64) -> ChaosConfig);
    // (name, destructive?, constructor). Benign profiles must stay
    // bit-for-bit equivalent to the simulator; destructive ones may
    // instead end in a typed error.
    let profiles: [Profile; 6] = [
        ("off", false, ChaosConfig::off),
        ("perturb", false, ChaosConfig::perturb),
        ("panics", true, ChaosConfig::panics),
        ("drops", true, ChaosConfig::drops),
        ("dups", true, ChaosConfig::dups),
        ("mixed", true, ChaosConfig::mixed),
    ];
    let schemas: &[(&str, TranslateOptions)] = &if quick {
        vec![("schema2", TranslateOptions::schema2())]
    } else {
        vec![
            ("schema2", TranslateOptions::schema2()),
            ("full", TranslateOptions::full_parallel()),
        ]
    };

    // Injected operator panics are expected by the thousand; keep them
    // off stderr. Genuine panics still print through the previous hook.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("chaos: "));
        if !injected {
            prev_hook(info);
        }
    }));

    let mut rows: Vec<ChaosRow> = profiles.iter().map(|_| ChaosRow::default()).collect();
    let mut violations: Vec<String> = Vec::new();
    let mut runs = 0u64;
    let started = std::time::Instant::now();

    // One persistent pool per worker count: panic containment must leave
    // the pool usable, so the whole campaign doubles as a reuse test.
    let pools: Vec<ExecutorPool> = workers.iter().map(|&w| ExecutorPool::new(w)).collect();

    for (name, src) in cf2df::lang::corpus::all() {
        if let Some(only) = &only {
            if !only.iter().any(|p| p == name) {
                continue;
            }
        }
        let parsed = cf2df::lang::parse_to_cfg(src).unwrap_or_else(|e| {
            eprintln!("corpus program {name} failed to parse: {e}");
            exit(1)
        });
        for (slabel, opts) in schemas {
            let t = match translate(&parsed.cfg, &parsed.alias, opts) {
                Ok(t) => t,
                // Stricter schemas reject a few corpus programs; the
                // executor would reject them identically.
                Err(_) => continue,
            };
            let layout = MemLayout::distinct(&t.cfg.vars);
            let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap_or_else(|e| {
                eprintln!("{slabel}/{name}: simulator oracle failed: {e}");
                exit(1)
            });
            for (pi, (plabel, destructive, make)) in profiles.iter().enumerate() {
                for seed in 0..seeds {
                    for (wi, &w) in workers.iter().enumerate() {
                        let cfg = ParConfig {
                            fuel,
                            watchdog: Some(std::time::Duration::from_millis(watchdog_ms)),
                            chaos: Some(make(seed)),
                            ..ParConfig::default()
                        };
                        let (result, metrics, _) =
                            run_threaded_pooled_with(&t.dfg, &layout, &pools[wi], &cfg);
                        runs += 1;
                        rows[pi].faults_injected += metrics.chaos.total();
                        let ctx = || format!("{slabel}/{name} profile={plabel} seed={seed} workers={w}");
                        match result {
                            Ok(out) => {
                                rows[pi].ok += 1;
                                if out.memory != sim.memory
                                    || out.ist_memory != sim.ist_memory
                                    || out.fired != sim.stats.fired
                                {
                                    violations.push(format!(
                                        "{}: completed but diverged from simulator \
                                         (fired {} vs {})",
                                        ctx(),
                                        out.fired,
                                        sim.stats.fired
                                    ));
                                }
                            }
                            Err(e) => {
                                if !destructive {
                                    violations.push(format!(
                                        "{}: benign profile failed: {e}",
                                        ctx()
                                    ));
                                }
                                match e {
                                    MachineError::WorkerPanicked { .. } => rows[pi].panics += 1,
                                    MachineError::TokenLeak { .. } => rows[pi].leaks += 1,
                                    MachineError::TokenCollision { .. } => {
                                        rows[pi].collisions += 1
                                    }
                                    MachineError::TagSpaceExhausted { .. } => {
                                        rows[pi].tag_exhausted += 1
                                    }
                                    MachineError::FuelExhausted => rows[pi].fuel += 1,
                                    MachineError::WatchdogTimeout { .. } => {
                                        rows[pi].watchdogs += 1
                                    }
                                    other => violations.push(format!(
                                        "{}: untyped/unexpected failure: {other}",
                                        ctx()
                                    )),
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    println!(
        "{:<9} {:>6} {:>7} {:>6} {:>10} {:>5} {:>5} {:>9} {:>9}",
        "profile", "ok", "panics", "leaks", "collisions", "tags", "fuel", "watchdogs", "injected"
    );
    for (pi, (plabel, _, _)) in profiles.iter().enumerate() {
        let r = &rows[pi];
        println!(
            "{:<9} {:>6} {:>7} {:>6} {:>10} {:>5} {:>5} {:>9} {:>9}",
            plabel,
            r.ok,
            r.panics,
            r.leaks,
            r.collisions,
            r.tag_exhausted,
            r.fuel,
            r.watchdogs,
            r.faults_injected
        );
    }
    for v in violations.iter().take(20) {
        eprintln!("VIOLATION: {v}");
    }
    if violations.len() > 20 {
        eprintln!("… and {} more", violations.len() - 20);
    }
    let secs = started.elapsed().as_secs_f64();
    if violations.is_empty() {
        println!(
            "chaos: {runs} runs clean in {secs:.1}s (seeds={seeds}, workers={workers:?}): \
             every run matched the simulator or returned a typed error"
        );
    } else {
        eprintln!("chaos: {} violation(s) in {runs} runs", violations.len());
        exit(1)
    }
}

/// `cf2df serve`: run the concurrent multi-invocation engine over one
/// program and verify every request against the deterministic simulator.
/// Doubles as the CI smoke gate for the tag-space-multiplexed executor
/// (`--quick`).
fn run_serve(mut args: Args) {
    use cf2df::machine::serve::run_concurrent;
    use cf2df::machine::{compile, ExecutorPool, ParConfig};

    let quick = args.flag("--quick");
    let requests: usize = args
        .value("--requests")
        .map(|s| s.parse().expect("numeric --requests"))
        .unwrap_or(if quick { 32 } else { 256 });
    let inflight: usize = args
        .value("--inflight")
        .map(|s| s.parse().expect("numeric --inflight"))
        .unwrap_or(4);
    let workers: usize = args
        .value("--workers")
        .map(|s| s.parse().expect("numeric --workers"))
        .unwrap_or(4);
    let opts = parse_schema(&mut args);
    let program = if args.rest.is_empty() {
        "running_example".to_owned()
    } else {
        args.rest.remove(0)
    };
    if !args.rest.is_empty() {
        eprintln!("serve: unrecognized arguments {:?}", args.rest);
        usage();
    }

    let src = load_source(&program);
    let parsed = cf2df::lang::parse_to_cfg(&src).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap_or_else(|e| {
        eprintln!("translation error: {e}");
        exit(1)
    });
    let layout = MemLayout::distinct(&t.cfg.vars);
    let cg = compile(&t.dfg).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        exit(1)
    });
    let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap_or_else(|e| {
        eprintln!("{program}: simulator oracle failed: {e}");
        exit(1)
    });

    let cfg = ParConfig {
        // A session-wide bound so a wedged smoke run fails instead of
        // hanging CI.
        watchdog: Some(std::time::Duration::from_secs(60)),
        ..ParConfig::default()
    };
    let pool = ExecutorPool::new(workers);
    let started = std::time::Instant::now();
    let (results, stats) = run_concurrent(&cg, &layout, &pool, inflight, &cfg, requests);
    let secs = started.elapsed().as_secs_f64();

    let mut mismatches = 0usize;
    for (req, r) in results.iter().enumerate() {
        match r {
            Ok(out) => {
                if out.memory != sim.memory
                    || out.ist_memory != sim.ist_memory
                    || out.fired != sim.stats.fired
                {
                    eprintln!(
                        "MISMATCH: request {req} diverged from simulator (fired {} vs {})",
                        out.fired, sim.stats.fired
                    );
                    mismatches += 1;
                }
            }
            Err(e) => {
                eprintln!("FAILED: request {req}: {e}");
                mismatches += 1;
            }
        }
    }
    println!("{}", stats.summary());
    println!(
        "serve: {program}: {requests} requests on {workers} workers (inflight {inflight}) \
         in {secs:.3}s = {:.0} req/s",
        requests as f64 / secs
    );
    if mismatches > 0 {
        eprintln!("serve: {mismatches} of {requests} requests wrong");
        exit(1)
    }
}

/// The certification matrix `cf2df validate corpus` sweeps: Schemas 1–3
/// with both cover strategies, optimized construction off and on.
fn validate_matrix() -> Vec<(&'static str, TranslateOptions)> {
    vec![
        ("schema1", TranslateOptions::schema1()),
        ("schema2", TranslateOptions::schema3(CoverStrategy::Singletons)),
        (
            "schema3-alias",
            TranslateOptions::schema3(CoverStrategy::AliasClasses),
        ),
        (
            "optimized",
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
        ),
        ("full", TranslateOptions::full_parallel_schema3()),
    ]
}

/// One `validate` unit of work: certify `label`'s translation and print
/// the report. Returns the clean graph for the mutation slice, or `None`
/// (having recorded the defect) when certification failed.
fn validate_one(
    label: &str,
    parsed: &cf2df::lang::Parsed,
    opts: &TranslateOptions,
    json: bool,
    failures: &mut Vec<String>,
) -> Option<cf2df::dfg::Dfg> {
    use cf2df::core::TranslateError;
    let opts = opts.clone().with_certify(true);
    let (report, dfg) = match translate(&parsed.cfg, &parsed.alias, &opts) {
        Ok(t) => (t.certify.clone().expect("certify pass ran"), Some(t.dfg)),
        Err(TranslateError::Certify(report)) => (*report, None),
        Err(e) => {
            failures.push(format!("{label}: translation error: {e}"));
            if !json {
                println!("{label}: translation error: {e}");
            }
            return None;
        }
    };
    if json {
        println!("{{\"target\":\"{label}\",\"report\":{}}}", report.to_json());
    } else {
        println!("{label}: {report}");
    }
    if report.is_clean() {
        dfg
    } else {
        failures.push(format!("{label}: {} defects", report.defect_count()));
        None
    }
}

/// The seeded mutation slice: inject every mutation class × `seeds`
/// seeds into a certified-clean graph; each applied mutation must be
/// detected by the graph-level certifier.
fn mutation_slice(
    label: &str,
    dfg: &cf2df::dfg::Dfg,
    seeds: u64,
    counts: &mut std::collections::BTreeMap<&'static str, (u64, u64)>,
    failures: &mut Vec<String>,
) {
    use cf2df::dfg::{certify, mutate, MutationClass};
    for class in MutationClass::ALL {
        for seed in 0..seeds {
            let mut g = dfg.clone();
            let Some(m) = mutate(&mut g, class, seed) else {
                continue;
            };
            let row = counts.entry(class.name()).or_insert((0, 0));
            row.0 += 1;
            if certify(&g).is_err() {
                row.1 += 1;
            } else {
                failures.push(format!(
                    "{label}: {} seed {seed} UNDETECTED: {}",
                    class.name(),
                    m.description
                ));
            }
        }
    }
}

/// `cf2df validate`: the static translation validator as a command.
fn run_validate(mut args: Args) {
    let json = args.flag("--json");
    let mutations = args.flag("--mutations");
    let seeds: u64 = args
        .value("--seeds")
        .map(|s| s.parse().expect("numeric --seeds"))
        .unwrap_or(4);
    let opts = parse_schema(&mut args);
    if args.rest.len() != 1 {
        eprintln!("validate takes exactly one target (a file, corpus name, or `corpus`)");
        usage();
    }
    let target = args.rest.remove(0);

    let mut failures: Vec<String> = Vec::new();
    let mut counts: std::collections::BTreeMap<&'static str, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut certified = 0usize;

    if target.ends_with(".dfg") {
        // Graph file: graph-level obligations only (no CFG to check
        // switch placement or conservation against).
        let text = std::fs::read_to_string(&target).unwrap_or_else(|e| {
            eprintln!("cannot read {target}: {e}");
            exit(2)
        });
        let (g, _vars) = cf2df::dfg::io::read_module(&text).unwrap_or_else(|e| {
            eprintln!("bad graph file: {e}");
            exit(1)
        });
        let report = cf2df::core::CertifyReport {
            graph_defects: cf2df::dfg::certify(&g).err().unwrap_or_default(),
            ..Default::default()
        };
        if json {
            println!("{{\"target\":\"{target}\",\"report\":{}}}", report.to_json());
        } else {
            println!("{target}: {report}");
        }
        if report.is_clean() {
            certified += 1;
            if mutations {
                mutation_slice(&target, &g, seeds, &mut counts, &mut failures);
            }
        } else {
            failures.push(format!("{target}: {} defects", report.defect_count()));
        }
    } else if target == "corpus" {
        for (name, src) in cf2df::lang::corpus::all() {
            let parsed = cf2df::lang::parse_to_cfg(src).unwrap_or_else(|e| {
                eprintln!("corpus program {name} failed to parse: {e}");
                exit(1)
            });
            for (slabel, opts) in validate_matrix() {
                let label = format!("{name}/{slabel}");
                if let Some(dfg) = validate_one(&label, &parsed, &opts, json, &mut failures) {
                    certified += 1;
                    if mutations {
                        mutation_slice(&label, &dfg, seeds, &mut counts, &mut failures);
                    }
                }
            }
        }
    } else {
        let src = load_source(&target);
        let parsed = cf2df::lang::parse_to_cfg(&src).unwrap_or_else(|e| {
            eprintln!("parse error: {e}");
            exit(1)
        });
        if let Some(dfg) = validate_one(&target, &parsed, &opts, json, &mut failures) {
            certified += 1;
            if mutations {
                mutation_slice(&target, &dfg, seeds, &mut counts, &mut failures);
            }
        }
    }

    if mutations && !json {
        println!("{:<24} {:>8} {:>9}", "mutation class", "applied", "detected");
        for (class, (applied, detected)) in &counts {
            println!("{class:<24} {applied:>8} {detected:>9}");
        }
    }
    for f in failures.iter().take(20) {
        eprintln!("DEFECT: {f}");
    }
    if failures.len() > 20 {
        eprintln!("… and {} more", failures.len() - 20);
    }
    if failures.is_empty() {
        if !json {
            let injected: u64 = counts.values().map(|&(a, _)| a).sum();
            let tail = if mutations {
                format!(", {injected} injected mutations all detected")
            } else {
                String::new()
            };
            println!("validate: {certified} translation(s) certified clean{tail}");
        }
    } else {
        eprintln!("validate: {} defect(s) across {certified} clean translation(s)", failures.len());
        exit(1)
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let cmd = argv.remove(0);
    if cmd == "validate" {
        run_validate(Args { rest: argv });
        return;
    }
    if cmd == "chaos" {
        run_chaos(Args { rest: argv });
        return;
    }
    if cmd == "serve" {
        run_serve(Args { rest: argv });
        return;
    }
    if cmd == "bench" {
        let mut args = Args { rest: argv };
        let quick = args.flag("--quick");
        let fuse = !args.flag("--no-fuse");
        let out_dir = args.value("--out-dir").unwrap_or_else(|| ".".to_owned());
        if !args.rest.is_empty() {
            eprintln!("bench: unrecognized arguments {:?}", args.rest);
            usage();
        }
        run_bench(quick, fuse, &out_dir);
        return;
    }
    if cmd == "fuse-check" {
        run_fuse_check(Args { rest: argv });
        return;
    }
    if cmd == "check-bench" {
        let mut args = Args { rest: argv };
        let compare_against = args.value("--compare");
        let tolerance = match args.value("--tolerance") {
            Some(t) => t.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("--tolerance needs a numeric fraction, e.g. 0.25");
                exit(2)
            }),
            None => cf2df::bench::compare::DEFAULT_TOLERANCE,
        };
        // `--min-token-reduction FRAC:PREFIX` — with --compare, demand
        // that every tokens_processed delta on workloads matching PREFIX
        // improved by at least FRAC (the fusion acceptance gate).
        let min_reduction = args.value("--min-token-reduction").map(|spec| {
            let Some((frac, prefix)) = spec.split_once(':') else {
                eprintln!("--min-token-reduction needs FRAC:PREFIX, e.g. 0.25:loop_nest");
                exit(2)
            };
            let frac: f64 = frac.parse().unwrap_or_else(|_| {
                eprintln!("--min-token-reduction needs a numeric fraction, e.g. 0.25:loop_nest");
                exit(2)
            });
            (frac, prefix.to_owned())
        });
        // `--require-wall-leq PREFIX` — with --compare, demand that
        // every wall-clock median on workloads matching PREFIX is at or
        // below the baseline's (the compiled-graph acceptance gate).
        let wall_leq = args.value("--require-wall-leq");
        // `--require-inflight-speedup FACTOR` — on a throughput
        // artifact, demand req/sec at inflight 4 on 4 workers beats the
        // serial baseline by FACTOR on at least two workloads (the
        // multiplexed-serving acceptance gate). Applies to the new
        // artifact; needs no baseline.
        let inflight_gain = args.value("--require-inflight-speedup").map(|f| {
            f.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("--require-inflight-speedup needs a numeric factor, e.g. 1.3");
                exit(2)
            })
        });
        let run_inflight_gate = |text: &str, path: &str| {
            let Some(factor) = inflight_gain else { return };
            let violations =
                cf2df::bench::compare::require_inflight_speedup(text, 4.0, 4.0, factor, 2)
                    .unwrap_or_else(|e| {
                        eprintln!("inflight-speedup gate: {e}");
                        exit(1)
                    });
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("inflight-speedup gate: {v}");
                }
                exit(1)
            }
            println!(
                "inflight-speedup gate: {path} clears {factor:.2}x at inflight 4 on 4 workers"
            );
        };
        if args.rest.is_empty() {
            usage();
        }
        if let Some(old_path) = compare_against {
            if args.rest.len() != 1 {
                eprintln!("check-bench --compare takes exactly one new artifact");
                exit(2)
            }
            let read = |p: &str| {
                std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("cannot read {p}: {e}");
                    exit(2)
                })
            };
            let (old_text, new_text) = (read(&old_path), read(&args.rest[0]));
            let cmp = cf2df::bench::compare::compare_artifacts(&old_text, &new_text, tolerance)
                .unwrap_or_else(|e| {
                    eprintln!("compare failed: {e}");
                    exit(1)
                });
            for d in &cmp.deltas {
                println!("{}", d.line());
            }
            for u in &cmp.unmatched {
                println!("unmatched workload: {u}");
            }
            if let Some((frac, prefix)) = &min_reduction {
                let violations = cmp.require_token_reduction(*frac, prefix);
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("token-reduction gate: {v}");
                    }
                    exit(1)
                }
                println!(
                    "token-reduction gate: '{prefix}' workloads improved >= {:.0}%",
                    frac * 100.0
                );
            }
            if let Some(prefix) = &wall_leq {
                let violations = cmp.require_wall_leq(prefix);
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("wall-ceiling gate: {v}");
                    }
                    exit(1)
                }
                println!("wall-ceiling gate: '{prefix}' medians at or below baseline");
            }
            run_inflight_gate(&new_text, &args.rest[0]);
            let regressions = cmp.regressions();
            if regressions.is_empty() {
                println!(
                    "{}: ok vs {old_path} ({} quantities compared, tolerance {tolerance})",
                    args.rest[0],
                    cmp.deltas.len()
                );
            } else {
                eprintln!(
                    "{}: {} REGRESSION(S) vs {old_path}",
                    args.rest[0],
                    regressions.len()
                );
                exit(1)
            }
            return;
        }
        let mut gated = false;
        for path in &args.rest {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(2)
            });
            match cf2df::bench::artifacts::validate_artifact(&text) {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    exit(1)
                }
            }
            // The inflight-speedup gate needs no baseline, so it also
            // runs in plain validation mode — on the throughput
            // artifact(s) among the arguments.
            if text.contains("\"artifact\":\"throughput\"") {
                run_inflight_gate(&text, path);
                gated = true;
            }
        }
        if inflight_gain.is_some() && !gated {
            eprintln!("--require-inflight-speedup: no throughput artifact among the arguments");
            exit(1)
        }
        return;
    }
    if argv.is_empty() {
        usage();
    }
    let file = argv.remove(0);
    let mut args = Args { rest: argv };
    if cmd == "run-graph" {
        let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
            eprintln!("cannot read {file}: {e}");
            exit(2)
        });
        let (g, vars) = cf2df::dfg::io::read_module(&text).unwrap_or_else(|e| {
            eprintln!("bad graph file: {e}");
            exit(1)
        });
        let mc = parse_machine(&mut args);
        let layout = MemLayout::distinct(&vars);
        let out = run(&g, &layout, mc).unwrap_or_else(|e| {
            eprintln!("machine fault: {e}");
            exit(1)
        });
        println!("{}", out.stats.summary());
        for v in vars.ids() {
            let base = layout.base(v) as usize;
            println!("  {} = {}", vars.name(v), out.memory[base]);
        }
        return;
    }
    let src = load_source(&file);
    let parsed = cf2df::lang::parse_to_cfg(&src).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });

    match cmd.as_str() {
        "cfg" => {
            if args.flag("--dot") {
                print!("{}", cf2df::cfg::dot::cfg_to_dot(&parsed.cfg, &file));
            } else {
                print!("{}", parsed.cfg.pretty());
            }
        }
        "translate" => {
            let opts = parse_schema(&mut args);
            let dot = args.flag("--dot");
            let time_passes = args.flag("--time-passes");
            let emit = args.value("--emit");
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap_or_else(|e| {
                eprintln!("translation error: {e}");
                exit(1)
            });
            if time_passes {
                eprint!("{}", cf2df::core::render_pass_table(&t.passes));
            }
            eprintln!("{}", t.stats.summary());
            if let Some(path) = emit {
                let text = cf2df::dfg::io::write_module(&t.dfg, &t.cfg.vars);
                std::fs::write(&path, text).expect("writable output");
                eprintln!("wrote {path}");
            } else if dot {
                print!("{}", cf2df::dfg::dot::dfg_to_dot(&t.dfg, &file));
            } else {
                print!("{}", t.dfg.pretty());
            }
        }
        "run" => {
            let opts = parse_schema(&mut args);
            let mc = parse_machine(&mut args);
            let want_trace = args.flag("--trace");
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap_or_else(|e| {
                eprintln!("translation error: {e}");
                exit(1)
            });
            let layout = MemLayout::distinct(&t.cfg.vars);
            let out = if want_trace {
                let (out, trace) = run_traced(&t.dfg, &layout, mc).unwrap_or_else(|e| {
                    eprintln!("machine fault: {e}");
                    exit(1)
                });
                print!("{}", trace.timeline(&t.dfg));
                out
            } else {
                run(&t.dfg, &layout, mc).unwrap_or_else(|e| {
                    eprintln!("machine fault: {e}");
                    exit(1)
                })
            };
            println!("{}", out.stats.summary());
            for v in t.cfg.vars.ids() {
                let base = layout.base(v) as usize;
                let cells = layout.cells(v) as usize;
                if cells == 1 {
                    println!("  {} = {}", t.cfg.vars.name(v), out.memory[base]);
                } else {
                    let slice: Vec<i64> = out.memory[base..base + cells].to_vec();
                    let ist: Vec<i64> = out.ist_memory[base..base + cells].to_vec();
                    let shown = if ist.iter().any(|&x| x != 0) { ist } else { slice };
                    println!("  {} = {:?}", t.cfg.vars.name(v), shown);
                }
            }
        }
        "stats" => {
            let opts = parse_schema(&mut args);
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap_or_else(|e| {
                eprintln!("translation error: {e}");
                exit(1)
            });
            let cg = cf2df::machine::compile(&t.dfg).unwrap_or_else(|e| {
                eprintln!("compile error: {e}");
                exit(1)
            });
            let f = cg.footprint();
            println!("{}", t.stats.summary());
            println!("compiled footprint:");
            println!("  operator descriptors {:>8}", f.ops);
            println!("  output ports         {:>8}", f.out_ports);
            println!("  destination slots    {:>8}", f.dest_slots);
            println!("  immediate slots      {:>8}", f.imm_slots);
            println!("  macro steps          {:>8}", f.macro_steps);
            println!("  table bytes          {:>8}", f.bytes);
            println!(
                "  max hot arity        {:>8}  (inline capacity {})",
                cg.max_hot_arity(),
                cf2df::machine::compiled::INLINE_VALS
            );
        }
        "compare" => {
            let mc = parse_machine(&mut args);
            let layout = MemLayout::distinct(&parsed.cfg.vars);
            let base = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap_or_else(|e| {
                eprintln!("baseline fault: {e}");
                exit(1)
            });
            println!(
                "{:<12} {:>9} {:>9} {:>9} {:>9}",
                "config", "fired", "makespan", "avg-par", "speedup"
            );
            println!(
                "{:<12} {:>9} {:>9} {:>9.2} {:>8.2}x",
                "sequential",
                base.stats.fired,
                base.stats.makespan,
                1.0,
                1.0
            );
            for (label, opts) in [
                ("schema1", TranslateOptions::schema1()),
                (
                    "schema2",
                    TranslateOptions::schema3(CoverStrategy::Singletons),
                ),
                (
                    "optimized",
                    TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
                ),
                ("full", TranslateOptions::full_parallel_schema3()),
            ] {
                let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap_or_else(|e| {
                    eprintln!("translation error ({label}): {e}");
                    exit(1)
                });
                let out = run(&t.dfg, &layout, mc.clone()).unwrap_or_else(|e| {
                    eprintln!("machine fault ({label}): {e}");
                    exit(1)
                });
                if out.memory != base.memory {
                    eprintln!("{label}: MEMORY MISMATCH vs sequential semantics");
                    exit(1)
                }
                println!(
                    "{:<12} {:>9} {:>9} {:>9.2} {:>8.2}x",
                    label,
                    out.stats.fired,
                    out.stats.makespan,
                    out.stats.avg_parallelism(),
                    base.stats.makespan as f64 / out.stats.makespan as f64
                );
            }
        }
        _ => usage(),
    }
}
