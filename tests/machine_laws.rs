//! Scheduling-theory laws the simulated machine must obey, checked across
//! the corpus. These pin down the *meaning* of the parallelism numbers the
//! experiments report.

use cf2df::cfg::{CoverStrategy, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::{run, MachineConfig};

fn prepared(src: &str) -> (cf2df::dfg::Dfg, MemLayout) {
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(
        &parsed.cfg,
        &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::Singletons),
    )
    .unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    (t.dfg, layout)
}

/// Work conservation: the number of operator firings is independent of the
/// schedule (processor count), because firing is determined solely by
/// token arrivals.
#[test]
fn work_is_schedule_invariant() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let t_inf = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        for p in [1usize, 3, 8] {
            let t_p = run(&g, &layout, MachineConfig::with_processors(p)).unwrap();
            assert_eq!(t_p.stats.fired, t_inf.stats.fired, "{name} P={p}");
            assert_eq!(t_p.memory, t_inf.memory, "{name} P={p}");
        }
    }
}

/// Brent's bound: with unit-latency operators, a P-processor greedy
/// schedule satisfies `T_P ≤ T_1/P + T_∞` (and trivially `T_P ≥ T_∞`,
/// `T_P ≥ T_1/P`).
#[test]
fn brent_bound_holds() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let inf = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let one = run(&g, &layout, MachineConfig::with_processors(1)).unwrap();
        let t1 = one.stats.makespan as f64;
        let tinf = inf.stats.makespan as f64;
        for p in [2usize, 4, 8] {
            let tp = run(&g, &layout, MachineConfig::with_processors(p))
                .unwrap()
                .stats
                .makespan as f64;
            assert!(tp >= tinf - 1e-9, "{name}: T_{p} < T_inf");
            assert!(tp + 1e-9 >= t1 / p as f64, "{name}: T_{p} < T_1/{p}");
            assert!(
                tp <= t1 / p as f64 + tinf + 1e-9,
                "{name} P={p}: Brent violated: T_P={tp}, T_1={t1}, T_inf={tinf}"
            );
        }
    }
}

/// The parallelism profile accounts for every firing, and its peak is the
/// reported max parallelism.
#[test]
fn profile_accounts_for_all_firings() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let total: u64 = out.stats.profile.iter().map(|&c| c as u64).sum();
        assert_eq!(total, out.stats.fired, "{name}");
        let peak = out.stats.profile.iter().copied().max().unwrap_or(0);
        assert_eq!(peak, out.stats.max_parallelism, "{name}");
    }
}

/// Iteration tags are bounded by the dynamic trip counts: tags created
/// equals the total number of loop iterations entered (checked against the
/// sequential interpreter's statement trace on single-loop programs).
#[test]
fn tags_match_trip_counts() {
    // running_example: 5 trips. fib: n=15 trips.
    let cases = [
        (cf2df::lang::corpus::RUNNING_EXAMPLE, 5u64),
        (cf2df::lang::corpus::FIB, 16u64), // for 1..=15: 16 header entries? tags = iterations entered
    ];
    for (src, expected_min) in cases {
        let (g, layout) = prepared(src);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert!(
            out.stats.tags_created >= expected_min - 1
                && out.stats.tags_created <= expected_min + 1,
            "tags {} not within 1 of {expected_min}",
            out.stats.tags_created
        );
    }
}

/// Determinism: repeated runs produce byte-identical outcomes (memory,
/// stats, profile).
#[test]
fn simulator_is_deterministic() {
    for (_, src) in cf2df::lang::corpus::all().into_iter().take(6) {
        let (g, layout) = prepared(src);
        let a = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.stats, b.stats);
    }
}

/// Memory traffic equals the loads and stores the graph encodes: reads and
/// writes are schedule-invariant too.
#[test]
fn memory_traffic_is_schedule_invariant() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let a = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g, &layout, MachineConfig::with_processors(2)).unwrap();
        assert_eq!(a.stats.mem_reads, b.stats.mem_reads, "{name}");
        assert_eq!(a.stats.mem_writes, b.stats.mem_writes, "{name}");
    }
}

/// Scheduling-policy ablation: FIFO and LIFO issue orders are both greedy
/// schedules — same work, same final memory, both within Brent's bound —
/// but they may differ in makespan under scarce processors.
#[test]
fn lifo_schedule_is_equally_correct() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let inf = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let t1 = run(&g, &layout, MachineConfig::with_processors(1))
            .unwrap()
            .stats
            .makespan as f64;
        let tinf = inf.stats.makespan as f64;
        for p in [1usize, 2, 4] {
            let mut mc = MachineConfig::with_processors(p).lifo();
            mc.fuel = 50_000_000;
            let out = run(&g, &layout, mc).unwrap();
            assert_eq!(out.memory, inf.memory, "{name} lifo P={p}");
            assert_eq!(out.stats.fired, inf.stats.fired, "{name} lifo P={p}");
            let tp = out.stats.makespan as f64;
            assert!(
                tp <= t1 / p as f64 + tinf + 1e-9,
                "{name} lifo P={p}: Brent violated"
            );
        }
    }
}
