//! Scheduling-theory laws the simulated machine must obey, checked across
//! the corpus. These pin down the *meaning* of the parallelism numbers the
//! experiments report.

use cf2df::cfg::{CoverStrategy, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::{run, MachineConfig};

fn prepared(src: &str) -> (cf2df::dfg::Dfg, MemLayout) {
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(
        &parsed.cfg,
        &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::Singletons),
    )
    .unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    (t.dfg, layout)
}

/// Work conservation: the number of operator firings is independent of the
/// schedule (processor count), because firing is determined solely by
/// token arrivals.
#[test]
fn work_is_schedule_invariant() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let t_inf = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        for p in [1usize, 3, 8] {
            let t_p = run(&g, &layout, MachineConfig::with_processors(p)).unwrap();
            assert_eq!(t_p.stats.fired, t_inf.stats.fired, "{name} P={p}");
            assert_eq!(t_p.memory, t_inf.memory, "{name} P={p}");
        }
    }
}

/// Brent's bound: with unit-latency operators, a P-processor greedy
/// schedule satisfies `T_P ≤ T_1/P + T_∞` (and trivially `T_P ≥ T_∞`,
/// `T_P ≥ T_1/P`).
#[test]
fn brent_bound_holds() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let inf = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let one = run(&g, &layout, MachineConfig::with_processors(1)).unwrap();
        let t1 = one.stats.makespan as f64;
        let tinf = inf.stats.makespan as f64;
        for p in [2usize, 4, 8] {
            let tp = run(&g, &layout, MachineConfig::with_processors(p))
                .unwrap()
                .stats
                .makespan as f64;
            assert!(tp >= tinf - 1e-9, "{name}: T_{p} < T_inf");
            assert!(tp + 1e-9 >= t1 / p as f64, "{name}: T_{p} < T_1/{p}");
            assert!(
                tp <= t1 / p as f64 + tinf + 1e-9,
                "{name} P={p}: Brent violated: T_P={tp}, T_1={t1}, T_inf={tinf}"
            );
        }
    }
}

/// The parallelism profile accounts for every firing, and its peak is the
/// reported max parallelism.
#[test]
fn profile_accounts_for_all_firings() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let total: u64 = out.stats.profile.iter().map(|&c| c as u64).sum();
        assert_eq!(total, out.stats.fired, "{name}");
        let peak = out.stats.profile.iter().copied().max().unwrap_or(0);
        assert_eq!(peak, out.stats.max_parallelism, "{name}");
    }
}

/// Iteration tags are bounded by the dynamic trip counts: tags created
/// equals the total number of loop iterations entered (checked against the
/// sequential interpreter's statement trace on single-loop programs).
#[test]
fn tags_match_trip_counts() {
    // running_example: 5 trips. fib: n=15 trips.
    let cases = [
        (cf2df::lang::corpus::RUNNING_EXAMPLE, 5u64),
        (cf2df::lang::corpus::FIB, 16u64), // for 1..=15: 16 header entries? tags = iterations entered
    ];
    for (src, expected_min) in cases {
        let (g, layout) = prepared(src);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert!(
            out.stats.tags_created >= expected_min - 1
                && out.stats.tags_created <= expected_min + 1,
            "tags {} not within 1 of {expected_min}",
            out.stats.tags_created
        );
    }
}

/// Determinism: repeated runs produce byte-identical outcomes (memory,
/// stats, profile).
#[test]
fn simulator_is_deterministic() {
    for (_, src) in cf2df::lang::corpus::all().into_iter().take(6) {
        let (g, layout) = prepared(src);
        let a = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.stats, b.stats);
    }
}

/// Memory traffic equals the loads and stores the graph encodes: reads and
/// writes are schedule-invariant too.
#[test]
fn memory_traffic_is_schedule_invariant() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let a = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g, &layout, MachineConfig::with_processors(2)).unwrap();
        assert_eq!(a.stats.mem_reads, b.stats.mem_reads, "{name}");
        assert_eq!(a.stats.mem_writes, b.stats.mem_writes, "{name}");
    }
}

/// The shared firing kernel: both backends run every operator kind
/// through the *same* `fire_op`, so for any graph — hand-built to cover
/// the kinds translation never emits, plus the translated corpus at
/// every schema, fused and unfused — final ordinary memory, I-structure
/// memory, and the fired-operator count must be identical between the
/// deterministic simulator and the threaded executor at every width.
/// The test also proves the coverage claim: the union of operator kinds
/// across the cases is *all 22* kinds, so no `OpKind` semantics exist
/// outside the kernel's tested surface.
#[test]
fn shared_kernel_agrees_across_backends_for_every_op_kind() {
    use cf2df::cfg::{BinOp, UnOp, VarId, VarTable};
    use cf2df::dfg::graph::ArcKind;
    use cf2df::dfg::{Dfg, OpKind, Port};
    use cf2df::machine::parallel::run_threaded;

    let mut cases: Vec<(String, Dfg, MemLayout)> = Vec::new();

    // Hand-built: the kinds the translator never emits (Unary, Identity,
    // IstLoad, IstStore) in one graph the corpus sweep can't reach.
    // x := -(0 + 41); a[2] := 41 (I-structure); y := a[2].
    {
        let mut vars = VarTable::new();
        vars.scalar("x");
        vars.scalar("y");
        vars.array("a", 4);
        let layout = MemLayout::distinct(&vars);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let add41 = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add41, 1, 41);
        let neg = g.add(OpKind::Unary { op: UnOp::Neg });
        let st_x = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st_x, 1, 0); // access trigger satisfied immediately
        let id = g.add(OpKind::Identity);
        let add2 = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add2, 1, 2);
        let ist_st = g.add(OpKind::IstStore { var: VarId(2) });
        g.set_imm(ist_st, 0, 2); // index
        let ist_ld = g.add(OpKind::IstLoad { var: VarId(2) });
        let st_y = g.add(OpKind::Store { var: VarId(1) });
        g.set_imm(st_y, 1, 0); // access trigger satisfied immediately
        let e = g.add(OpKind::End { inputs: 3 });
        g.connect(Port::new(s, 0), Port::new(add41, 0), ArcKind::Value);
        g.connect(Port::new(add41, 0), Port::new(neg, 0), ArcKind::Value);
        g.connect(Port::new(neg, 0), Port::new(st_x, 0), ArcKind::Value);
        g.connect(Port::new(s, 0), Port::new(id, 0), ArcKind::Access);
        g.connect(Port::new(id, 0), Port::new(add2, 0), ArcKind::Value);
        g.connect(Port::new(add41, 0), Port::new(ist_st, 1), ArcKind::Value);
        g.connect(Port::new(add2, 0), Port::new(ist_ld, 0), ArcKind::Value);
        g.connect(Port::new(ist_ld, 0), Port::new(st_y, 0), ArcKind::Value);
        g.connect(Port::new(st_x, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(st_y, 0), Port::new(e, 1), ArcKind::Access);
        g.connect(Port::new(ist_st, 0), Port::new(e, 2), ArcKind::Access);
        cases.push(("hand/ist_unary_identity".to_owned(), g, layout));
    }

    // The translated corpus: every schema, fused and unfused, covers the
    // remaining kinds (loops, switches, macro/loop-switch compounds).
    let schemas: Vec<(&str, TranslateOptions)> = vec![
        ("schema1", TranslateOptions::schema1()),
        ("schema2", TranslateOptions::schema2()),
        (
            "schema3",
            TranslateOptions::schema3(CoverStrategy::Singletons),
        ),
        (
            "schema3-fused",
            TranslateOptions::schema3(CoverStrategy::Singletons).with_fuse(true),
        ),
        ("full", TranslateOptions::full_parallel_schema3()),
    ];
    for (label, opts) in &schemas {
        for (name, src) in cf2df::lang::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            if let Ok(t) = translate(&parsed.cfg, &parsed.alias, opts) {
                let layout = MemLayout::distinct(&t.cfg.vars);
                cases.push((format!("{label}/{name}"), t.dfg, layout));
            }
        }
    }

    // Coverage: the cases must exercise all 22 operator kinds.
    let all_kinds = [
        OpKind::Start,
        OpKind::End { inputs: 1 },
        OpKind::Unary { op: UnOp::Neg },
        OpKind::Binary { op: BinOp::Add },
        OpKind::Switch,
        OpKind::CaseSwitch { arms: 2 },
        OpKind::Merge,
        OpKind::Synch { inputs: 2 },
        OpKind::Identity,
        OpKind::Gate,
        OpKind::Load { var: VarId(0) },
        OpKind::Store { var: VarId(0) },
        OpKind::LoadIdx { var: VarId(0) },
        OpKind::StoreIdx { var: VarId(0) },
        OpKind::IstLoad { var: VarId(0) },
        OpKind::IstStore { var: VarId(0) },
        OpKind::LoopEntry {
            loop_id: cf2df::cfg::LoopId(0),
        },
        OpKind::LoopExit {
            loop_id: cf2df::cfg::LoopId(0),
        },
        OpKind::PrevIter {
            loop_id: cf2df::cfg::LoopId(0),
        },
        OpKind::IterIndex {
            loop_id: cf2df::cfg::LoopId(0),
        },
        OpKind::LoopSwitch {
            loop_id: cf2df::cfg::LoopId(0),
        },
        OpKind::Macro {
            inputs: 1,
            steps: Vec::new(),
        },
    ];
    let covered: std::collections::HashSet<_> = cases
        .iter()
        .flat_map(|(_, g, _)| g.op_ids().map(|o| std::mem::discriminant(g.kind(o))))
        .collect();
    for k in &all_kinds {
        assert!(
            covered.contains(&std::mem::discriminant(k)),
            "no case exercises {k:?} — the kernel law is not covering it"
        );
    }

    for (name, g, layout) in &cases {
        let sim = run(g, layout, MachineConfig::unbounded())
            .unwrap_or_else(|e| panic!("{name}: simulator failed: {e:?}"));
        for workers in [1usize, 2, 4] {
            let par = run_threaded(g, layout, workers)
                .unwrap_or_else(|e| panic!("{name} at {workers} workers: {e:?}"));
            assert_eq!(par.memory, sim.memory, "{name} at {workers} workers");
            assert_eq!(
                par.ist_memory, sim.ist_memory,
                "{name} at {workers} workers"
            );
            assert_eq!(par.fired, sim.stats.fired, "{name} at {workers} workers");
        }
    }
}

/// The hot firing path never heap-allocates: every compiled corpus graph
/// keeps its hot-kind (Unary/Binary/Macro) arities within the inline
/// buffer, and running everything through both backends trips the
/// spill-audit counter zero times.
#[test]
fn hot_path_stays_inline_across_the_corpus() {
    use cf2df::machine::compiled::{audit, INLINE_VALS};
    use cf2df::machine::parallel::run_threaded;

    let schemas = [
        TranslateOptions::schema2(),
        TranslateOptions::schema3(CoverStrategy::Singletons).with_fuse(true),
        TranslateOptions::full_parallel_schema3(),
    ];
    for opts in &schemas {
        for (name, src) in cf2df::lang::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            if let Ok(t) = translate(&parsed.cfg, &parsed.alias, opts) {
                let cg = cf2df::machine::compile(&t.dfg).unwrap();
                assert!(
                    cg.max_hot_arity() <= INLINE_VALS,
                    "{name}: hot arity {} exceeds the {INLINE_VALS}-slot inline buffer",
                    cg.max_hot_arity()
                );
                let layout = MemLayout::distinct(&t.cfg.vars);
                run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
                run_threaded(&t.dfg, &layout, 2).unwrap();
            }
        }
    }
    assert_eq!(
        audit::hot_spills(),
        0,
        "a hot-path firing heap-spilled its inline buffer"
    );
}

/// Scheduling-policy ablation: FIFO and LIFO issue orders are both greedy
/// schedules — same work, same final memory, both within Brent's bound —
/// but they may differ in makespan under scarce processors.
#[test]
fn lifo_schedule_is_equally_correct() {
    for (name, src) in cf2df::lang::corpus::all() {
        let (g, layout) = prepared(src);
        let inf = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let t1 = run(&g, &layout, MachineConfig::with_processors(1))
            .unwrap()
            .stats
            .makespan as f64;
        let tinf = inf.stats.makespan as f64;
        for p in [1usize, 2, 4] {
            let mut mc = MachineConfig::with_processors(p).lifo();
            mc.fuel = 50_000_000;
            let out = run(&g, &layout, mc).unwrap();
            assert_eq!(out.memory, inf.memory, "{name} lifo P={p}");
            assert_eq!(out.stats.fired, inf.stats.fired, "{name} lifo P={p}");
            let tp = out.stats.makespan as f64;
            assert!(
                tp <= t1 / p as f64 + tinf + 1e-9,
                "{name} lifo P={p}: Brent violated"
            );
        }
    }
}
