//! End-to-end tests of the `cf2df` command-line driver.

use std::process::Command;

fn cf2df(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_cf2df"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn cfg_prints_nodes_and_dot() {
    let (stdout, _, ok) = cf2df(&["cfg", "running_example"]);
    assert!(ok);
    assert!(stdout.contains("y := (x + 1)"));
    let (dot, _, ok) = cf2df(&["cfg", "running_example", "--dot"]);
    assert!(ok);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("style=dashed"), "conventional edge");
}

#[test]
fn run_prints_results_and_stats() {
    let (stdout, _, ok) = cf2df(&["run", "gcd"]);
    assert!(ok);
    assert!(stdout.contains("a = 21"), "{stdout}");
    assert!(stdout.contains("makespan"));
}

#[test]
fn run_with_trace_shows_timeline() {
    let (stdout, _, ok) = cf2df(&["run", "fib", "--schema1", "--trace"]);
    assert!(ok);
    assert!(stdout.contains("t=0"));
    assert!(stdout.contains("load"));
}

#[test]
fn compare_reports_speedups_and_checks_memory() {
    let (stdout, _, ok) = cf2df(&["compare", "independent"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("sequential"));
    assert!(stdout.contains("schema2"));
    assert!(stdout.contains("full"));
}

#[test]
fn emit_and_run_graph_round_trip() {
    let dir = std::env::temp_dir().join("cf2df_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fib.dfg");
    let path_s = path.to_str().unwrap();
    let (_, stderr, ok) = cf2df(&["translate", "fib", "--optimized", "--emit", path_s]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("wrote"));
    let (stdout, _, ok) = cf2df(&["run-graph", path_s]);
    assert!(ok);
    assert!(stdout.contains("b = 987"), "fib(16): {stdout}");
}

#[test]
fn machine_flags_are_honoured() {
    let (fast, _, _) = cf2df(&["run", "independent", "--mem-latency", "1"]);
    let (slow, _, _) = cf2df(&["run", "independent", "--mem-latency", "50"]);
    let span = |s: &str| -> u64 {
        s.split("makespan=")
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap()
    };
    assert!(span(&slow) > span(&fast));
    let (p1, _, _) = cf2df(&["run", "independent", "--processors", "1"]);
    assert!(span(&p1) >= span(&fast));
}

#[test]
fn broken_graph_reports_collision() {
    let (_, stderr, ok) = cf2df(&[
        "run",
        "running_example",
        "--no-loop-control",
        "--mem-latency",
        "10",
    ]);
    // The balanced running example completes even without loop control;
    // but stdin-supplied skewed loops must fault. Use a skewed program via
    // a temp file.
    let _ = (stderr, ok);
    let dir = std::env::temp_dir().join("cf2df_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("skewed.imp");
    std::fs::write(
        &path,
        "l:\n y := y + 1;\n y := y + 3;\n y := y + 5;\n x := x + 1;\n if x < 8 then { goto l; } else { goto end; }\n",
    )
    .unwrap();
    let (_, stderr, ok) = cf2df(&[
        "run",
        path.to_str().unwrap(),
        "--no-loop-control",
        "--mem-latency",
        "10",
    ]);
    assert!(!ok);
    assert!(stderr.contains("token collision"), "{stderr}");
}

#[test]
fn parse_errors_are_reported_with_lines() {
    let dir = std::env::temp_dir().join("cf2df_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.imp");
    std::fs::write(&path, "x := 1;\ny := ;\n").unwrap();
    let (_, stderr, ok) = cf2df(&["cfg", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn bench_writes_valid_artifacts_and_check_bench_verifies_them() {
    let dir = std::env::temp_dir().join("cf2df_cli_bench_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_str().unwrap();
    let (_, stderr, ok) = cf2df(&["bench", "--quick", "--out-dir", dir_s]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("BENCH_pipeline.json"), "{stderr}");
    assert!(stderr.contains("BENCH_executor.json"), "{stderr}");

    let pipeline = dir.join("BENCH_pipeline.json");
    let executor = dir.join("BENCH_executor.json");
    let (stdout, stderr, ok) =
        cf2df(&["check-bench", pipeline.to_str().unwrap(), executor.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.matches(": ok").count() == 2, "{stdout}");

    // The executor artifact sweeps 1/2/4/8 workers with per-worker counters.
    let doc = std::fs::read_to_string(&executor).unwrap();
    for probe in ["\"workers\":1", "\"workers\":2", "\"workers\":4", "\"workers\":8", "\"steals\"", "\"parks\""] {
        assert!(doc.contains(probe), "missing {probe}");
    }

    // check-bench rejects a corrupted artifact.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"artifact\":\"pipeline\",\"workloads\":[]}").unwrap();
    let (_, stderr, ok) = cf2df(&["check-bench", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("INVALID"), "{stderr}");
}

#[test]
fn check_bench_compare_gates_regressions() {
    let dir = std::env::temp_dir().join("cf2df_cli_compare_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_str().unwrap();
    let (_, stderr, ok) = cf2df(&["bench", "--quick", "--out-dir", dir_s]);
    assert!(ok, "{stderr}");
    let pipeline = dir.join("BENCH_pipeline.json");
    let pipeline_s = pipeline.to_str().unwrap();

    // An artifact compared against itself passes and reports deltas.
    let (stdout, stderr, ok) =
        cf2df(&["check-bench", pipeline_s, "--compare", pipeline_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("quantities compared"), "{stdout}");

    // Inflating deterministic counters in the new artifact fails the gate.
    let doc = std::fs::read_to_string(&pipeline).unwrap();
    let worse = dir.join("worse.json");
    std::fs::write(&worse, doc.replace("\"fired\":", "\"fired\":1")).unwrap();
    let (stdout, stderr, ok) = cf2df(&[
        "check-bench",
        worse.to_str().unwrap(),
        "--compare",
        pipeline_s,
    ]);
    assert!(!ok, "{stdout}");
    assert!(stderr.contains("REGRESSION"), "{stderr}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // Executor artifacts compare too (same artifact: no regression).
    let executor = dir.join("BENCH_executor.json");
    let executor_s = executor.to_str().unwrap();
    let (stdout, stderr, ok) = cf2df(&[
        "check-bench",
        executor_s,
        "--compare",
        executor_s,
        "--tolerance",
        "0.25",
    ]);
    assert!(ok, "{stdout} {stderr}");
    assert!(stdout.contains("wall_ns"), "{stdout}");

    // The compiled-graph wall ceiling: identical medians pass, a
    // prefix matching no workload fails loudly.
    let (stdout, stderr, ok) = cf2df(&[
        "check-bench",
        executor_s,
        "--compare",
        executor_s,
        "--require-wall-leq",
        "loop_nest",
    ]);
    assert!(ok, "{stdout} {stderr}");
    assert!(stdout.contains("wall-ceiling gate"), "{stdout}");
    let (stdout, stderr, ok) = cf2df(&[
        "check-bench",
        executor_s,
        "--compare",
        executor_s,
        "--require-wall-leq",
        "no_such_workload",
    ]);
    assert!(!ok, "{stdout}");
    assert!(stderr.contains("wall-ceiling gate"), "{stderr}");
}

#[test]
fn stats_prints_compiled_footprint() {
    let (stdout, stderr, ok) = cf2df(&["stats", "stencil", "--full"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("compiled footprint"), "{stdout}");
    for field in ["operator descriptors", "destination slots", "table bytes", "max hot arity"] {
        assert!(stdout.contains(field), "{stdout}");
    }
    assert!(stdout.contains("inline capacity"), "{stdout}");
}

#[test]
fn chaos_campaign_runs_clean_and_reports_faults() {
    // A tiny deterministic slice of the campaign: one program, both
    // benign and destructive profiles, two worker counts. Must exit 0
    // (all runs equivalent-or-typed-error) and actually inject faults.
    let (stdout, stderr, ok) = cf2df(&[
        "chaos",
        "--quick",
        "--seeds",
        "2",
        "--workers",
        "2,4",
        "--programs",
        "gcd,nested",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    for profile in ["off", "perturb", "panics", "drops", "dups", "mixed"] {
        assert!(stdout.contains(profile), "missing {profile} row: {stdout}");
    }
    assert!(stdout.contains("runs clean"), "{stdout}");
    // Destructive profiles must have injected something across this
    // many runs; the table's injected column is summed per profile.
    let injected: u64 = stdout
        .lines()
        .filter(|l| {
            l.starts_with("panics") || l.starts_with("drops") || l.starts_with("dups")
        })
        .filter_map(|l| l.split_whitespace().last()?.parse::<u64>().ok())
        .sum();
    assert!(injected > 0, "no faults injected: {stdout}");
}

#[test]
fn istructure_flag_applies() {
    let (stdout, stderr, ok) = cf2df(&[
        "run",
        "stencil",
        "--optimized",
        "--memelim",
        "--istructure",
        "src,dst",
        "--mem-latency",
        "8",
    ]);
    assert!(ok, "{stderr}");
    // Array contents print from I-structure memory.
    assert!(stdout.contains("checksum = "), "{stdout}");
}
