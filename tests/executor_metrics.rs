//! Observability contracts of the threaded executor: the always-on
//! metrics in [`cf2df::machine::ParMetrics`] must be self-consistent on
//! every corpus program at every worker count, the trace ring must
//! capture firings on success and failure alike, and a deadlocked graph
//! must be reported with the partially-filled rendezvous slots that
//! caused it — not a generic "quiesced without End" string.

use cf2df::cfg::{MemLayout, VarTable};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::dfg::{ArcKind, Dfg, OpKind, Port};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::parallel::run_threaded_traced;
use cf2df::machine::{run_threaded, MachineError};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Every processed token either fires an operator or merges into a
/// rendezvous slot; the per-worker tallies must account for all of them.
#[test]
fn metrics_are_self_consistent_across_the_corpus() {
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let t = match translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()) {
            Ok(t) => t,
            Err(_) => continue, // rejected by the stricter schema; covered elsewhere
        };
        let layout = MemLayout::distinct(&t.cfg.vars);
        for workers in WORKERS {
            let out = run_threaded(&t.dfg, &layout, workers)
                .unwrap_or_else(|e| panic!("{name} at {workers} workers: {e}"));
            let m = &out.metrics;
            assert_eq!(m.workers.len(), workers, "{name}: one stats entry per worker");
            assert_eq!(
                m.tokens_processed,
                out.fired + m.merged,
                "{name} at {workers} workers: every token fires or merges"
            );
            let by_worker: u64 = m.workers.iter().map(|w| w.processed).sum();
            assert_eq!(
                by_worker, m.tokens_processed,
                "{name} at {workers} workers: per-worker tallies account for all tokens"
            );
            // Every token either came off a queue (popped, injected or
            // stolen) or was one of the two halves of a worker-local
            // fast-path join, which never transits a queue.
            let sourced: u64 = m
                .workers
                .iter()
                .map(|w| w.local_pops + w.injector_hits + w.steals + 2 * w.fast_path)
                .sum();
            assert_eq!(
                sourced, m.tokens_processed,
                "{name} at {workers} workers: every token came from somewhere"
            );
            let fast: u64 = m.workers.iter().map(|w| w.fast_path).sum();
            assert_eq!(
                fast, m.fast_path_fires,
                "{name} at {workers} workers: fast-path total matches per-worker tallies"
            );
            let shard_max = m.slot_shard_high_water.iter().copied().max().unwrap_or(0);
            let shard_sum: u64 = m.slot_shard_high_water.iter().sum();
            assert!(
                shard_max <= m.max_pending_slots && m.max_pending_slots <= shard_sum.max(shard_max),
                "{name} at {workers} workers: slot high-water bounds"
            );
            for w in &m.workers {
                assert!(
                    w.unparks <= w.parks,
                    "{name} at {workers} workers: a worker wakes at most once per park"
                );
            }
            if workers == 1 {
                assert_eq!(
                    m.workers[0].steals, 0,
                    "{name}: a lone worker has nobody to steal from"
                );
            }
        }
    }
}

/// The no-steal pathology regression test: on the largest bench
/// workload, round-robin seeding plus steal-half must give *every*
/// worker real work. (BENCH_executor.json once showed siblings with
/// `processed: 0, steals: 0, parks: 0` at 2–8 workers because the lone
/// injector queue fed only worker 0.)
#[test]
fn every_worker_processes_tokens_on_loop_nest() {
    let src = cf2df::bench::workloads::loop_nest(3, 6);
    let parsed = parse_to_cfg(&src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    for workers in [2, 4] {
        let out = run_threaded(&t.dfg, &layout, workers).unwrap();
        for (i, w) in out.metrics.workers.iter().enumerate() {
            assert!(
                w.processed > 0,
                "worker {i}/{workers} processed nothing: {:?}",
                out.metrics.workers
            );
        }
    }
}

/// The fast-path regression test: locality-aware seeding must keep the
/// worker-local two-input rendezvous fast path alive at *every* width.
/// (BENCH_executor.quick.json once showed `fast_path_fires` collapsing
/// from 48 to 0 on `loop_nest` at 8 workers because round-robin seeding
/// spread the halves of each join across different workers.)
#[test]
fn fast_path_fires_at_every_width_on_join_heavy_graphs() {
    let src = cf2df::bench::workloads::loop_nest(3, 6);
    let parsed = parse_to_cfg(&src).unwrap();
    // Both the original regression configuration (schema 2, unfused —
    // the loop switches are the joins) and the shipping bench
    // configuration (full pipeline, fused — the macros' joins remain).
    for (label, opts) in [
        ("schema2-unfused", TranslateOptions::schema2().with_fuse(false)),
        ("full-fused", TranslateOptions::full_parallel_schema3()),
    ] {
        let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
        let layout = MemLayout::distinct(&t.cfg.vars);
        for workers in WORKERS {
            let out = run_threaded(&t.dfg, &layout, workers).unwrap();
            assert!(
                out.metrics.fast_path_fires > 0,
                "{label}: fast path dead at {workers} workers: {:?}",
                out.metrics.workers
            );
        }
    }
}

/// A graph whose Synch never receives its second input must deadlock,
/// and the error must name the starving slot: operator, tag, and which
/// ports did arrive.
#[test]
fn deadlock_error_names_partially_filled_slots() {
    let mut vars = VarTable::new();
    vars.scalar("x");
    let layout = MemLayout::distinct(&vars);
    let mut g = Dfg::new();
    let s = g.add(OpKind::Start);
    let id = g.add(OpKind::Identity);
    let sy = g.add(OpKind::Synch { inputs: 2 });
    let e = g.add(OpKind::End { inputs: 1 });
    g.connect(Port::new(s, 0), Port::new(id, 0), ArcKind::Access);
    g.connect(Port::new(id, 0), Port::new(sy, 0), ArcKind::Access);
    g.connect(Port::new(sy, 0), Port::new(e, 0), ArcKind::Access);

    let (result, trace) = run_threaded_traced(&g, &layout, 4, 64);
    let MachineError::Deadlock { pending } = result.unwrap_err() else {
        panic!("expected a deadlock report")
    };
    assert!(!pending.is_empty(), "at least one starving slot is named");
    assert!(pending[0].contains("synch2"), "names the operator: {pending:?}");
    assert!(pending[0].contains("root"), "names the tag: {pending:?}");
    assert!(
        pending[0].contains("filled ports [0]"),
        "names the arrived ports: {pending:?}"
    );
    // The trace ring survives the failure path: the Identity between
    // Start and the starving Synch fired before the hang.
    assert!(!trace.is_empty(), "trace is returned on failure");
    assert_eq!(trace[0].op, id);
    let _ = s;
}

/// The same graphs through the traced entry point: the ring observes
/// exactly the fired operators when capacity suffices.
#[test]
fn trace_ring_matches_fired_count_on_corpus_programs() {
    for (name, src) in cf2df::lang::corpus::all().into_iter().take(4) {
        let parsed = parse_to_cfg(src).unwrap();
        let t = match translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let layout = MemLayout::distinct(&t.cfg.vars);
        let (result, trace) = run_threaded_traced(&t.dfg, &layout, 4, usize::MAX);
        let out = result.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            trace.len() as u64,
            out.fired,
            "{name}: one trace event per firing at unbounded capacity"
        );
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = trace.iter().map(|ev| ev.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len() as u64, out.fired, "{name}: unique sequence numbers");
    }
}
