//! Property-based tests (proptest) over randomly generated programs and
//! control-flow graphs.

use cf2df::bench::workloads::{random_program, GenConfig};
use cf2df::cfg::{between, ControlDeps, CoverStrategy, DomTree, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::{run, vonneumann, MachineConfig};
use proptest::prelude::*;

fn gen_config() -> impl Strategy<Value = GenConfig> {
    (2usize..6, 0usize..2, 1usize..5, 1usize..3, 0u32..40).prop_map(
        |(n_vars, n_arrays, block_len, max_depth, alias_percent)| GenConfig {
            n_vars,
            n_arrays,
            block_len,
            max_depth,
            alias_percent,
            max_trip: 3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: `N` is between `F` and `ipostdom(F)` iff `F ∈ CD⁺(N)` —
    /// checked by brute-force path search vs. the iterated worklist, on the
    /// CFGs of random programs.
    #[test]
    fn theorem1_between_iff_iterated_cd(seed in any::<u64>(), cfgen in gen_config()) {
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let cfg = &parsed.cfg;
        let pd = DomTree::postdominators(cfg);
        let cd = ControlDeps::compute(cfg, &pd);
        for n in cfg.node_ids() {
            let closure = cd.iterated_single(n);
            for f in cfg.node_ids() {
                prop_assert_eq!(
                    between(cfg, &pd, f, n),
                    closure[f.index()],
                    "Theorem 1 violated for F={:?}, N={:?}\n{}",
                    f, n, src
                );
            }
        }
    }

    /// The fast postdominator algorithm agrees with the quadratic
    /// set-based reference.
    #[test]
    fn postdominators_match_naive(seed in any::<u64>(), cfgen in gen_config()) {
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let cfg = &parsed.cfg;
        let pd = DomTree::postdominators(cfg);
        let sets = cf2df::cfg::postdom::naive_postdominator_sets(cfg);
        for a in cfg.node_ids() {
            for b in cfg.node_ids() {
                prop_assert_eq!(pd.dominates(a, b), sets[b.index()][a.index()]);
            }
        }
    }

    /// Every schema computes the sequential semantics on random programs.
    #[test]
    fn schemas_match_sequential_semantics(seed in any::<u64>(), cfgen in gen_config()) {
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::unbounded();
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        for opts in [
            TranslateOptions::schema1(),
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::schema3(CoverStrategy::AliasClasses),
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            TranslateOptions::full_parallel_schema3(),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            prop_assert_eq!(&out.memory, &oracle.memory, "{:?}\n{}", opts, src);
            prop_assert_eq!(out.stats.leftover_tokens, 0);
        }
    }

    /// Schema 3 graphs remain correct under every random consistent
    /// binding of the alias structure (names sharing locations).
    #[test]
    fn schema3_sound_for_random_bindings(
        seed in any::<u64>(),
        pick in any::<u64>(),
        mut cfgen in gen_config(),
    ) {
        cfgen.alias_percent = 50;
        cfgen.n_arrays = 2; // arrays share a length, so they may bind too
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let bindings = parsed.alias.consistent_bindings();
        prop_assume!(!bindings.is_empty());
        let binding = &bindings[(pick as usize) % bindings.len()];
        let layout = MemLayout::with_binding(&parsed.cfg.vars, binding);
        let mc = MachineConfig::unbounded();
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        for opts in [
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::schema3(CoverStrategy::AliasClasses),
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            prop_assert_eq!(&out.memory, &oracle.memory,
                "binding {:?} under {:?}\n{}", binding, opts, src);
        }
    }

    /// The optimized construction never emits a redundant switch, and its
    /// switch count never exceeds the full translation's.
    #[test]
    fn optimized_switches_are_minimal(seed in any::<u64>(), cfgen in gen_config()) {
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let full = translate(&parsed.cfg, &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons)).unwrap();
        let opt = translate(&parsed.cfg, &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true)).unwrap();
        prop_assert!(cf2df::dfg::validate::redundant_switches(&opt.dfg).is_empty());
        prop_assert!(opt.stats.switches <= full.stats.switches);
        prop_assert!(opt.stats.ops <= full.stats.ops);
    }

    /// Makespan is monotone in processor count, and the unbounded machine
    /// is a lower bound.
    #[test]
    fn makespan_monotone_in_processors(seed in any::<u64>()) {
        let cfgen = GenConfig { n_vars: 4, n_arrays: 1, block_len: 3, max_depth: 2,
            alias_percent: 0, max_trip: 3 };
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let t = translate(&parsed.cfg, &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons)).unwrap();
        let unbounded = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let p4 = run(&t.dfg, &layout, MachineConfig::with_processors(4)).unwrap();
        let p1 = run(&t.dfg, &layout, MachineConfig::with_processors(1)).unwrap();
        prop_assert!(unbounded.stats.makespan <= p4.stats.makespan);
        prop_assert!(p4.stats.makespan <= p1.stats.makespan);
        prop_assert_eq!(&unbounded.memory, &p1.memory);
        prop_assert_eq!(&unbounded.memory, &p4.memory);
        // Work is schedule-invariant.
        prop_assert_eq!(unbounded.stats.fired, p1.stats.fired);
    }

    /// Node splitting preserves semantics on irreducible graphs is covered
    /// by unit tests; here: loop-control insertion preserves the sequential
    /// semantics observed by the interpreter (joins/loop nodes are
    /// transparent).
    #[test]
    fn loop_control_transparent_to_baseline(seed in any::<u64>(), cfgen in gen_config()) {
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::default();
        let before = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        let lc = cf2df::cfg::loop_control::insert_loop_control(&parsed.cfg).unwrap();
        let after = vonneumann::interpret(&lc.cfg, &layout, &mc).unwrap();
        prop_assert_eq!(before.memory, after.memory);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Unstructured "goto soup" programs — frequently irreducible — go
    /// through node splitting (the paper's code-copying remedy) and every
    /// schema, and still compute the sequential semantics.
    #[test]
    fn goto_soup_survives_node_splitting(seed in any::<u64>(), blocks in 3usize..8) {
        let src = cf2df::bench::workloads::goto_soup(seed, blocks);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::unbounded();
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        for opts in [
            TranslateOptions::schema1(),
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            TranslateOptions::full_parallel_schema3(),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            prop_assert_eq!(&out.memory, &oracle.memory, "{:?}\n{}", opts, src);
        }
    }

    /// Node splitting really is exercised: a healthy share of the soup is
    /// irreducible before splitting.
    #[test]
    fn goto_soup_is_sometimes_irreducible(seed in 0u64..1) {
        let mut irreducible = 0usize;
        let mut total = 0usize;
        for s in 0..60u64 {
            let src = cf2df::bench::workloads::goto_soup(seed * 1000 + s, 6);
            let parsed = parse_to_cfg(&src).unwrap();
            total += 1;
            if cf2df::cfg::LoopForest::compute(&parsed.cfg).is_err() {
                irreducible += 1;
            }
        }
        prop_assert!(
            irreducible * 5 >= total,
            "only {irreducible}/{total} irreducible — generator too tame"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The textual graph format round-trips every graph the translator
    /// produces, and the reloaded graph executes identically.
    #[test]
    fn graph_text_format_round_trips(seed in any::<u64>(), cfgen in gen_config()) {
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let t = translate(&parsed.cfg, &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons)).unwrap();
        let text = cf2df::dfg::io::write_module(&t.dfg, &t.cfg.vars);
        let (g2, vars2) = cf2df::dfg::io::read_module(&text).unwrap();
        prop_assert_eq!(g2.len(), t.dfg.len());
        prop_assert_eq!(g2.arc_count(), t.dfg.arc_count());
        let layout = MemLayout::distinct(&vars2);
        let a = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g2, &layout, MachineConfig::unbounded()).unwrap();
        prop_assert_eq!(a.memory, b.memory);
        prop_assert_eq!(a.stats.fired, b.stats.fired);
        prop_assert_eq!(a.stats.makespan, b.stats.makespan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The io format also round-trips fully-transformed graphs (gates,
    /// prev-iter/iter-index, I-structure ops included).
    #[test]
    fn io_round_trips_transformed_graphs(seed in any::<u64>()) {
        let cfgen = GenConfig { n_vars: 4, n_arrays: 1, block_len: 3,
            max_depth: 2, alias_percent: 0, max_trip: 3 };
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let t = translate(&parsed.cfg, &parsed.alias,
            &TranslateOptions::full_parallel_schema3()).unwrap();
        let text = cf2df::dfg::io::write_module(&t.dfg, &t.cfg.vars);
        let (g2, vars2) = cf2df::dfg::io::read_module(&text).unwrap();
        let layout = MemLayout::distinct(&vars2);
        let a = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g2, &layout, MachineConfig::unbounded()).unwrap();
        prop_assert_eq!(a.memory, b.memory);
        prop_assert_eq!(a.stats.makespan, b.stats.makespan);
    }
}

/// Allen–Cocke intervals agree with the loop structure on reducible
/// graphs: every natural-loop header heads an interval, and each loop body
/// is contained in its header's interval.
#[test]
fn interval_partition_matches_loop_structure() {
    use cf2df::cfg::intervals::interval_partition;
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let forest = cf2df::cfg::LoopForest::compute(&parsed.cfg).unwrap();
        let parts = interval_partition(&parsed.cfg);
        for (_, info) in forest.iter() {
            let part = parts
                .iter()
                .find(|p| p.header == info.header)
                .unwrap_or_else(|| panic!("{name}: loop header not an interval header"));
            for &b in &info.body {
                // A nested inner loop's body sits in the inner header's
                // interval; only the outermost containing loop's body is
                // guaranteed to share its header's interval. Check the
                // weaker, always-true property: the node is in *some*
                // interval whose header is in this loop's body or is this
                // header.
                let holder = parts.iter().find(|p| p.contains(b)).unwrap();
                assert!(
                    holder.header == info.header || info.contains(holder.header),
                    "{name}: node {b:?} in a foreign interval"
                );
            }
            let _ = part;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Goto-form emission round-trips the semantics of random programs.
    #[test]
    fn emitted_source_preserves_random_semantics(seed in any::<u64>(), cfgen in gen_config()) {
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let emitted = cf2df::lang::emit::emit_goto_form(&parsed.cfg);
        let reparsed = parse_to_cfg(&emitted).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::default();
        let a = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        let b = vonneumann::interpret(&reparsed.cfg, &layout, &mc).unwrap();
        prop_assert_eq!(a.memory, b.memory, "{}\n-- emitted --\n{}", src, emitted);
    }

    /// The threaded executor agrees with the simulator on random programs.
    #[test]
    fn threaded_executor_matches_on_random_programs(seed in any::<u64>()) {
        let cfgen = GenConfig { n_vars: 4, n_arrays: 1, block_len: 3,
            max_depth: 2, alias_percent: 0, max_trip: 3 };
        let src = random_program(seed, &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let t = translate(&parsed.cfg, &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons)).unwrap();
        let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let par = cf2df::machine::parallel::run_threaded(&t.dfg, &layout, 3).unwrap();
        prop_assert_eq!(par.memory, sim.memory);
        prop_assert_eq!(par.fired, sim.stats.fired);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The io parser never panics on arbitrary input — it either parses or
    /// returns a structured error.
    #[test]
    fn io_parser_is_total(input in "\\PC*") {
        let _ = cf2df::dfg::io::read_text(&input);
        let _ = cf2df::dfg::io::read_module(&input);
    }

    /// Nor on line-structured junk resembling the format.
    #[test]
    fn io_parser_survives_formatish_junk(
        lines in proptest::collection::vec("(op|arc|var)? ?[0-9a-z .>=-]{0,20}", 0..12)
    ) {
        let input = format!("dfg v1\n{}", lines.join("\n"));
        let _ = cf2df::dfg::io::read_text(&input);
        let _ = cf2df::dfg::io::read_module(&input);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The language front end is total: arbitrary text either parses to a
    /// valid CFG or returns a structured error — never a panic.
    #[test]
    fn front_end_is_total(input in "\\PC*") {
        let _ = parse_to_cfg(&input);
    }

    /// Imp-looking junk too.
    #[test]
    fn front_end_survives_impish_junk(
        toks in proptest::collection::vec(
            "(x|y|if|then|else|while|do|goto|skip|array|alias|:=|;|\\{|\\}|[0-9]{1,3}|\\+|<|~|\\[|\\])",
            0..40
        )
    ) {
        let _ = parse_to_cfg(&toks.join(" "));
    }
}
