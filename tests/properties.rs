//! Property-based tests over randomly generated programs and
//! control-flow graphs, on the deterministic in-house harness
//! [`cf2df::testkit`] (the workspace builds offline with zero external
//! crates, so proptest itself is not available). Enable the `proptest`
//! cargo feature for heavy mode — 8× the cases per suite.

use cf2df::bench::prng::Prng;
use cf2df::bench::workloads::{goto_soup, random_program, GenConfig};
use cf2df::cfg::{between, ControlDeps, CoverStrategy, DomTree, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::{run, vonneumann, MachineConfig};
use cf2df::testkit;

fn gen_config(rng: &mut Prng) -> GenConfig {
    GenConfig {
        n_vars: rng.range_usize(2, 6),
        n_arrays: rng.range_usize(0, 2),
        block_len: rng.range_usize(1, 5),
        max_depth: rng.range_usize(1, 3),
        alias_percent: rng.below(40) as u32,
        max_trip: 3,
    }
}

/// The fixed small shape used by the suites that need loops but bounded
/// state space.
fn small_config() -> GenConfig {
    GenConfig {
        n_vars: 4,
        n_arrays: 1,
        block_len: 3,
        max_depth: 2,
        alias_percent: 0,
        max_trip: 3,
    }
}

/// Theorem 1: `N` is between `F` and `ipostdom(F)` iff `F ∈ CD⁺(N)` —
/// checked by brute-force path search vs. the iterated worklist, on the
/// CFGs of random programs.
#[test]
fn theorem1_between_iff_iterated_cd() {
    testkit::cases("theorem1", 48, |rng| {
        let cfgen = gen_config(rng);
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let cfg = &parsed.cfg;
        let pd = DomTree::postdominators(cfg);
        let cd = ControlDeps::compute(cfg, &pd);
        for n in cfg.node_ids() {
            let closure = cd.iterated_single(n);
            for f in cfg.node_ids() {
                assert_eq!(
                    between(cfg, &pd, f, n),
                    closure[f.index()],
                    "Theorem 1 violated for F={f:?}, N={n:?}\n{src}"
                );
            }
        }
    });
}

/// The fast postdominator algorithm agrees with the quadratic set-based
/// reference.
#[test]
fn postdominators_match_naive() {
    testkit::cases("postdom_naive", 48, |rng| {
        let cfgen = gen_config(rng);
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let cfg = &parsed.cfg;
        let pd = DomTree::postdominators(cfg);
        let sets = cf2df::cfg::postdom::naive_postdominator_sets(cfg);
        for a in cfg.node_ids() {
            for b in cfg.node_ids() {
                assert_eq!(pd.dominates(a, b), sets[b.index()][a.index()]);
            }
        }
    });
}

/// Every schema computes the sequential semantics on random programs.
#[test]
fn schemas_match_sequential_semantics() {
    testkit::cases("schemas_vs_seq", 48, |rng| {
        let cfgen = gen_config(rng);
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::unbounded();
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        for opts in [
            TranslateOptions::schema1(),
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::schema3(CoverStrategy::AliasClasses),
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            TranslateOptions::full_parallel_schema3(),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            assert_eq!(&out.memory, &oracle.memory, "{opts:?}\n{src}");
            assert_eq!(out.stats.leftover_tokens, 0);
        }
    });
}

/// Schema 3 graphs remain correct under every random consistent binding
/// of the alias structure (names sharing locations).
#[test]
fn schema3_sound_for_random_bindings() {
    testkit::cases("schema3_bindings", 48, |rng| {
        let mut cfgen = gen_config(rng);
        cfgen.alias_percent = 50;
        cfgen.n_arrays = 2; // arrays share a length, so they may bind too
        let src = random_program(rng.next_u64(), &cfgen);
        let pick = rng.next_u64();
        let parsed = parse_to_cfg(&src).unwrap();
        let bindings = parsed.alias.consistent_bindings();
        if bindings.is_empty() {
            return; // nothing to bind — vacuous case
        }
        let binding = &bindings[(pick as usize) % bindings.len()];
        let layout = MemLayout::with_binding(&parsed.cfg.vars, binding);
        let mc = MachineConfig::unbounded();
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        for opts in [
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::schema3(CoverStrategy::AliasClasses),
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            assert_eq!(
                &out.memory, &oracle.memory,
                "binding {binding:?} under {opts:?}\n{src}"
            );
        }
    });
}

/// The optimized construction never emits a redundant switch, and its
/// switch count never exceeds the full translation's.
#[test]
fn optimized_switches_are_minimal() {
    testkit::cases("opt_switches", 48, |rng| {
        let cfgen = gen_config(rng);
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let full = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
        )
        .unwrap();
        let opt = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
        )
        .unwrap();
        assert!(cf2df::dfg::validate::redundant_switches(&opt.dfg).is_empty());
        assert!(opt.stats.switches <= full.stats.switches);
        assert!(opt.stats.ops <= full.stats.ops);
    });
}

/// Makespan is monotone in processor count, and the unbounded machine is
/// a lower bound.
#[test]
fn makespan_monotone_in_processors() {
    testkit::cases("makespan_monotone", 48, |rng| {
        let src = random_program(rng.next_u64(), &small_config());
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
        )
        .unwrap();
        let unbounded = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let p4 = run(&t.dfg, &layout, MachineConfig::with_processors(4)).unwrap();
        let p1 = run(&t.dfg, &layout, MachineConfig::with_processors(1)).unwrap();
        assert!(unbounded.stats.makespan <= p4.stats.makespan);
        assert!(p4.stats.makespan <= p1.stats.makespan);
        assert_eq!(&unbounded.memory, &p1.memory);
        assert_eq!(&unbounded.memory, &p4.memory);
        // Work is schedule-invariant.
        assert_eq!(unbounded.stats.fired, p1.stats.fired);
    });
}

/// Loop-control insertion preserves the sequential semantics observed by
/// the interpreter (joins/loop nodes are transparent). Node splitting on
/// irreducible graphs is covered by `goto_soup_survives_node_splitting`.
#[test]
fn loop_control_transparent_to_baseline() {
    testkit::cases("loop_control_transparent", 48, |rng| {
        let cfgen = gen_config(rng);
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::default();
        let before = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        let lc = cf2df::cfg::loop_control::insert_loop_control(&parsed.cfg).unwrap();
        let after = vonneumann::interpret(&lc.cfg, &layout, &mc).unwrap();
        assert_eq!(before.memory, after.memory);
    });
}

/// Unstructured "goto soup" programs — frequently irreducible — go
/// through node splitting (the paper's code-copying remedy) and every
/// schema, and still compute the sequential semantics.
#[test]
fn goto_soup_survives_node_splitting() {
    testkit::cases("goto_soup_split", 40, |rng| {
        let blocks = rng.range_usize(3, 8);
        let src = goto_soup(rng.next_u64(), blocks);
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::unbounded();
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        for opts in [
            TranslateOptions::schema1(),
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            TranslateOptions::full_parallel_schema3(),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            assert_eq!(&out.memory, &oracle.memory, "{opts:?}\n{src}");
        }
    });
}

/// Node splitting really is exercised: a healthy share of the soup is
/// irreducible before splitting.
#[test]
fn goto_soup_is_sometimes_irreducible() {
    let mut irreducible = 0usize;
    let mut total = 0usize;
    for s in 0..60u64 {
        let src = goto_soup(s, 6);
        let parsed = parse_to_cfg(&src).unwrap();
        total += 1;
        if cf2df::cfg::LoopForest::compute(&parsed.cfg).is_err() {
            irreducible += 1;
        }
    }
    assert!(
        irreducible * 5 >= total,
        "only {irreducible}/{total} irreducible — generator too tame"
    );
}

/// The textual graph format round-trips every graph the translator
/// produces, and the reloaded graph executes identically.
#[test]
fn graph_text_format_round_trips() {
    testkit::cases("io_round_trip", 32, |rng| {
        let cfgen = gen_config(rng);
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
        )
        .unwrap();
        let text = cf2df::dfg::io::write_module(&t.dfg, &t.cfg.vars);
        let (g2, vars2) = cf2df::dfg::io::read_module(&text).unwrap();
        assert_eq!(g2.len(), t.dfg.len());
        assert_eq!(g2.arc_count(), t.dfg.arc_count());
        let layout = MemLayout::distinct(&vars2);
        let a = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g2, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.stats.fired, b.stats.fired);
        assert_eq!(a.stats.makespan, b.stats.makespan);
    });
}

/// The io format also round-trips fully-transformed graphs (gates,
/// prev-iter/iter-index, I-structure ops included).
#[test]
fn io_round_trips_transformed_graphs() {
    testkit::cases("io_round_trip_full", 24, |rng| {
        let src = random_program(rng.next_u64(), &small_config());
        let parsed = parse_to_cfg(&src).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::full_parallel_schema3(),
        )
        .unwrap();
        let text = cf2df::dfg::io::write_module(&t.dfg, &t.cfg.vars);
        let (g2, vars2) = cf2df::dfg::io::read_module(&text).unwrap();
        let layout = MemLayout::distinct(&vars2);
        let a = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g2, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.stats.makespan, b.stats.makespan);
    });
}

/// Allen–Cocke intervals agree with the loop structure on reducible
/// graphs: every natural-loop header heads an interval, and each loop
/// body is contained in its header's interval.
#[test]
fn interval_partition_matches_loop_structure() {
    use cf2df::cfg::intervals::interval_partition;
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let forest = cf2df::cfg::LoopForest::compute(&parsed.cfg).unwrap();
        let parts = interval_partition(&parsed.cfg);
        for (_, info) in forest.iter() {
            let part = parts
                .iter()
                .find(|p| p.header == info.header)
                .unwrap_or_else(|| panic!("{name}: loop header not an interval header"));
            for &b in &info.body {
                // A nested inner loop's body sits in the inner header's
                // interval; only the outermost containing loop's body is
                // guaranteed to share its header's interval. Check the
                // weaker, always-true property: the node is in *some*
                // interval whose header is in this loop's body or is this
                // header.
                let holder = parts.iter().find(|p| p.contains(b)).unwrap();
                assert!(
                    holder.header == info.header || info.contains(holder.header),
                    "{name}: node {b:?} in a foreign interval"
                );
            }
            let _ = part;
        }
    }
}

/// Goto-form emission round-trips the semantics of random programs.
#[test]
fn emitted_source_preserves_random_semantics() {
    testkit::cases("emit_round_trip", 32, |rng| {
        let cfgen = gen_config(rng);
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let emitted = cf2df::lang::emit::emit_goto_form(&parsed.cfg);
        let reparsed = parse_to_cfg(&emitted).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::default();
        let a = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        let b = vonneumann::interpret(&reparsed.cfg, &layout, &mc).unwrap();
        assert_eq!(a.memory, b.memory, "{src}\n-- emitted --\n{emitted}");
    });
}

/// The threaded executor agrees with the simulator on random programs.
/// (The full corpus at 1/2/4/8 workers is covered by
/// `tests/parallel_equivalence.rs`.)
#[test]
fn threaded_executor_matches_on_random_programs() {
    testkit::cases("threaded_random", 32, |rng| {
        let src = random_program(rng.next_u64(), &small_config());
        let parsed = parse_to_cfg(&src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
        )
        .unwrap();
        let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let par = cf2df::machine::parallel::run_threaded(&t.dfg, &layout, 3).unwrap();
        assert_eq!(par.memory, sim.memory);
        assert_eq!(par.fired, sim.stats.fired);
    });
}

/// The io parser never panics on arbitrary input — it either parses or
/// returns a structured error.
#[test]
fn io_parser_is_total() {
    testkit::cases("io_total", 256, |rng| {
        let input = testkit::junk_string(rng, 200);
        let _ = cf2df::dfg::io::read_text(&input);
        let _ = cf2df::dfg::io::read_module(&input);
    });
}

/// Nor on line-structured junk resembling the format.
#[test]
fn io_parser_survives_formatish_junk() {
    const CHARS: &[&str] = &[
        "0", "1", "2", "7", "9", "a", "b", "f", "x", "z", " ", ".", ">", "=", "-",
    ];
    testkit::cases("io_formatish", 256, |rng| {
        let n_lines = rng.range_usize(0, 12);
        let lines: Vec<String> = (0..n_lines)
            .map(|_| {
                let prefix = *rng.pick(&["op ", "arc ", "var ", ""]);
                format!("{prefix}{}", testkit::token_junk(rng, CHARS, 20, ""))
            })
            .collect();
        let input = format!("dfg v1\n{}", lines.join("\n"));
        let _ = cf2df::dfg::io::read_text(&input);
        let _ = cf2df::dfg::io::read_module(&input);
    });
}

/// The language front end is total: arbitrary text either parses to a
/// valid CFG or returns a structured error — never a panic.
#[test]
fn front_end_is_total() {
    testkit::cases("front_end_total", 256, |rng| {
        let input = testkit::junk_string(rng, 200);
        let _ = parse_to_cfg(&input);
    });
}

/// Imp-looking junk too.
#[test]
fn front_end_survives_impish_junk() {
    const TOKS: &[&str] = &[
        "x", "y", "if", "then", "else", "while", "do", "goto", "skip", "array",
        "alias", ":=", ";", "{", "}", "0", "7", "12", "100", "999", "+", "<",
        "~", "[", "]",
    ];
    testkit::cases("front_end_impish", 256, |rng| {
        let input = testkit::token_junk(rng, TOKS, 40, " ");
        let _ = parse_to_cfg(&input);
    });
}
