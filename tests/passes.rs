//! Pass-manager and analysis-cache behavior: invalidation when the CFG
//! mutates, the one-compute-per-revision discipline, and graph-identity
//! of the pass-manager pipeline against the same stages composed by
//! hand.
//!
//! The cache's stamp check (`debug_assert!` on a revision mismatch
//! inside every slot) runs live in this suite — a stale analysis
//! surviving an invalidation would panic any of these tests, not just
//! the ones asserting counters.

use cf2df::bench::workloads::{goto_soup, random_program, GenConfig};
use cf2df::cfg::loop_control::{
    insert_loop_control, insert_loop_control_in_place, split_irreducible,
};
use cf2df::cfg::{
    AliasStructure, AnalysisKind, Cfg, Cover, CoverStrategy, FunctionContext, LoopForest,
    Preserved,
};
use cf2df::core::pipeline::{translate, Schema, TranslateError, TranslateOptions};
use cf2df::core::{lines::Lines, optimized, translator};
use cf2df::dfg::Dfg;
use cf2df::lang::parse_to_cfg;
use cf2df::testkit;

const STRUCTURAL: [AnalysisKind; 6] = [
    AnalysisKind::Dominators,
    AnalysisKind::Postdominators,
    AnalysisKind::ControlDeps,
    AnalysisKind::LoopForest,
    AnalysisKind::TopoOrder,
    AnalysisKind::Preds,
];

fn warm_everything(fctx: &mut FunctionContext) {
    fctx.validate().unwrap();
    let _ = fctx.dominators();
    let _ = fctx.postdominators();
    let _ = fctx.control_deps();
    let _ = fctx.loop_forest().unwrap();
    let _ = fctx.topo_order().unwrap();
    let _ = fctx.preds();
}

/// Mutating the CFG through loop-control insertion invalidates every
/// structural analysis (each is recomputed exactly once on next access)
/// while the explicitly preserved validity analysis keeps serving hits.
#[test]
fn loop_control_insertion_invalidates_stale_analyses() {
    let cfgen = GenConfig {
        n_vars: 4,
        n_arrays: 1,
        block_len: 3,
        max_depth: 2,
        alias_percent: 0,
        max_trip: 3,
    };
    testkit::cases("cache_invalidation", 32, |rng| {
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        let mut fctx = FunctionContext::new(parsed.cfg, parsed.alias);
        warm_everything(&mut fctx);
        let warm = fctx.stats();
        warm_everything(&mut fctx);
        assert_eq!(
            fctx.stats().since(&warm).total_computed(),
            0,
            "re-access on an unchanged CFG must be pure cache hits\n{src}"
        );

        let meta = insert_loop_control_in_place(&mut fctx).unwrap();
        if meta.forest.is_empty() {
            assert_eq!(fctx.revision(), 0, "acyclic: no mutation, no invalidation");
            return;
        }
        assert_eq!(fctx.revision(), 1, "one mutation, one revision bump");

        let before = fctx.stats();
        warm_everything(&mut fctx);
        let delta = fctx.stats().since(&before);
        for k in STRUCTURAL {
            assert_eq!(
                delta.computed_of(k),
                1,
                "{} must be recomputed after the CFG changed\n{src}",
                k.name()
            );
        }
        // Loop-control insertion only adds nodes on existing paths, so it
        // declares validity preserved: served from cache across the bump.
        assert_eq!(delta.computed_of(AnalysisKind::Validity), 0, "{src}");
        assert!(delta.hits_of(AnalysisKind::Validity) >= 1, "{src}");
    });
}

/// Node splitting replaces the CFG wholesale; even the memoized
/// irreducibility *failure* must not survive the revision bump.
#[test]
fn node_splitting_invalidates_the_memoized_failure() {
    testkit::cases("split_invalidation", 48, |rng| {
        let src = goto_soup(rng.next_u64(), 6);
        let Ok(parsed) = parse_to_cfg(&src) else { return };
        let mut fctx = FunctionContext::for_cfg(parsed.cfg);
        if fctx.loop_forest().is_ok() {
            return; // only irreducible soups exercise the splitting path
        }
        // The failure is memoized: asking again is a hit, not a recompute.
        let before = fctx.stats();
        assert!(fctx.loop_forest().is_err());
        let delta = fctx.stats().since(&before);
        assert_eq!(delta.computed_of(AnalysisKind::LoopForest), 0, "{src}");
        assert!(delta.hits_of(AnalysisKind::LoopForest) >= 1, "{src}");

        let split = split_irreducible(fctx.cfg()).unwrap();
        fctx.replace_cfg(split, Preserved::NONE);
        assert_eq!(fctx.revision(), 1);
        let before = fctx.stats();
        fctx.loop_forest()
            .expect("split CFG is reducible; the stale Err must be gone");
        assert_eq!(
            fctx.stats().since(&before).computed_of(AnalysisKind::LoopForest),
            1,
            "{src}"
        );
        fctx.validate().unwrap();
    });
}

/// The acceptance gate: a full pipeline run (Schema 2/3 tokens, the §4
/// optimized construction, all §6 transforms) computes each analysis at
/// most once per CFG revision, on every corpus program.
#[test]
fn full_pipeline_computes_each_analysis_once_per_revision() {
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        for (label, opts) in [
            (
                "optimized",
                TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            ),
            ("full", TranslateOptions::full_parallel_schema3()),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts)
                .unwrap_or_else(|e| panic!("{name}/{label}: {e}"));
            for k in STRUCTURAL {
                assert!(
                    t.cache_stats.computed_of(k) <= t.revisions + 1,
                    "{name}/{label}: {} computed {} times over {} revisions",
                    k.name(),
                    t.cache_stats.computed_of(k),
                    t.revisions
                );
            }
            assert_eq!(
                t.cache_stats.computed_of(AnalysisKind::Validity),
                1,
                "{name}/{label}: validity is checked once and preserved"
            );
            assert!(
                t.cache_stats.total_hits() > 0,
                "{name}/{label}: stages must share analyses through the cache"
            );
        }
    }
}

/// The old pipeline, composed stage by stage: reducibility check with
/// optional node splitting, token lines, loop-control insertion (the
/// cloning convenience API), then the schema or optimized construction.
fn reference_dfg(cfg: &Cfg, alias: &AliasStructure, opts: &TranslateOptions) -> Dfg {
    let strategy = match &opts.schema {
        Schema::One => CoverStrategy::SingleToken,
        Schema::Two => CoverStrategy::Singletons,
        Schema::Three(c) => c.clone(),
    };
    let working: Cfg = if LoopForest::compute(cfg).is_ok() {
        cfg.clone()
    } else {
        split_irreducible(cfg).unwrap()
    };
    let cover = Cover::build(&strategy, alias);
    let lines = Lines::new(&working.vars, alias, &cover, opts.eliminate_memory)
        .with_flat_synch(opts.flat_synch);
    if opts.loop_control {
        let lc = insert_loop_control(&working).unwrap();
        if opts.optimized {
            optimized::construct(&lc, &lines).unwrap().dfg
        } else {
            translator::translate_full(&lc.cfg, &lines).unwrap().dfg
        }
    } else {
        translator::translate_full(&working, &lines).unwrap().dfg
    }
}

fn equivalence_configs() -> Vec<(&'static str, TranslateOptions)> {
    // Fusion is switched off: the hand-composed reference pipeline ends
    // at construction, and this test is about schema/pass-manager
    // identity, not the post-certify machine-level coarsening.
    vec![
        ("schema1", TranslateOptions::schema1().with_fuse(false)),
        ("schema2", TranslateOptions::schema2().with_fuse(false)),
        (
            "schema3-singletons",
            TranslateOptions::schema3(CoverStrategy::Singletons).with_fuse(false),
        ),
        (
            "schema3-aliasclasses",
            TranslateOptions::schema3(CoverStrategy::AliasClasses).with_fuse(false),
        ),
        (
            "schema2-optimized",
            TranslateOptions::optimized().with_fuse(false),
        ),
        (
            "schema3-optimized",
            TranslateOptions::schema3(CoverStrategy::Singletons)
                .with_optimized(true)
                .with_fuse(false),
        ),
    ]
}

/// The pass-manager pipeline emits a graph *identical* (same operators,
/// labels, and arcs, in the same order) to the hand-composed stage
/// sequence, across the full corpus × Schemas 1–3 × optimized on/off.
#[test]
fn pass_manager_is_graph_identical_to_composed_stages() {
    let corpus = cf2df::lang::corpus::all();
    let mut checked = 0;
    for (name, src) in &corpus {
        let parsed = parse_to_cfg(src).unwrap();
        for (label, opts) in equivalence_configs() {
            let t = match translate(&parsed.cfg, &parsed.alias, &opts) {
                Ok(t) => t,
                // Schema 2 legitimately rejects aliasing programs; the
                // schema3 configs cover those.
                Err(TranslateError::AliasingRequiresSchema3) => continue,
                Err(e) => panic!("{name}/{label}: {e}"),
            };
            let reference = reference_dfg(&parsed.cfg, &parsed.alias, &opts);
            assert_eq!(
                t.dfg.pretty(),
                reference.pretty(),
                "{name}/{label}: pass manager diverged from the composed stages"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= corpus.len() * 4,
        "equivalence coverage fell short: only {checked} combinations"
    );
}

/// Same identity on random programs, beyond the fixed corpus.
#[test]
fn pass_manager_matches_composed_stages_on_random_programs() {
    let cfgen = GenConfig {
        n_vars: 4,
        n_arrays: 1,
        block_len: 3,
        max_depth: 2,
        alias_percent: 30,
        max_trip: 3,
    };
    testkit::cases("pass_mgr_equiv", 32, |rng| {
        let src = random_program(rng.next_u64(), &cfgen);
        let parsed = parse_to_cfg(&src).unwrap();
        for (label, opts) in [
            (
                "schema3",
                TranslateOptions::schema3(CoverStrategy::Singletons).with_fuse(false),
            ),
            (
                "schema3-optimized",
                TranslateOptions::schema3(CoverStrategy::Singletons)
                    .with_optimized(true)
                    .with_fuse(false),
            ),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts)
                .unwrap_or_else(|e| panic!("{label}: {e}\n{src}"));
            let reference = reference_dfg(&parsed.cfg, &parsed.alias, &opts);
            assert_eq!(t.dfg.pretty(), reference.pretty(), "{label}\n{src}");
        }
    });
}
