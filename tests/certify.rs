//! Integration tests for the static translation validator.
//!
//! Three obligations from the certify design:
//!
//! 1. The unmutated corpus certifies 100% clean across the full option
//!    matrix (Schemas 1–3, both cover strategies, optimized construction
//!    off and on, full parallelization).
//! 2. The seeded mutation harness detects every injected translator-bug
//!    class, and each detection reports a defect variant the class is
//!    expected to produce — a `drop-arc` caught only as, say, a tag leak
//!    would mean the checker fired for the wrong reason.
//! 3. A graph whose loop exit was deleted is rejected *statically*: it
//!    passes structural validation (so pre-certify tooling would have
//!    handed it to the machine, which leaks the iteration tag) but the
//!    certifier refuses it before anything runs.

use cf2df::cfg::CoverStrategy;
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::dfg::{certify, mutate, validate, DefectKind, MutationClass};

/// The certification matrix: Schemas 1–3 × optimized off/on.
fn matrix() -> Vec<(&'static str, TranslateOptions)> {
    vec![
        ("schema1", TranslateOptions::schema1()),
        ("schema2", TranslateOptions::schema3(CoverStrategy::Singletons)),
        (
            "schema3-alias",
            TranslateOptions::schema3(CoverStrategy::AliasClasses),
        ),
        (
            "optimized",
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
        ),
        ("full", TranslateOptions::full_parallel_schema3()),
    ]
}

#[test]
fn unmutated_corpus_certifies_clean_across_the_matrix() {
    let mut certified = 0;
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = cf2df::lang::parse_to_cfg(src).unwrap();
        for (label, opts) in matrix() {
            let t = translate(&parsed.cfg, &parsed.alias, &opts)
                .unwrap_or_else(|e| panic!("{name}/{label}: {e}"));
            let report = t
                .certify
                .unwrap_or_else(|| panic!("{name}/{label}: certify pass did not run"));
            assert!(report.is_clean(), "{name}/{label}: {report}");
            certified += 1;
        }
    }
    assert!(certified >= 75, "corpus matrix shrank to {certified} cells");
}

/// Certify-after-fuse: the pipeline certifies the graph the schemas
/// produced and *then* fuses, so re-running the certifier on the final
/// fused graph checks that macro-op fusion preserves every token-rate
/// obligation — compound `Macro` actors as ordinary strict operators,
/// fused `LoopSwitch` pairs unifying with unfused switches of the same
/// predicate fork.
#[test]
fn fused_corpus_graphs_recertify_clean_across_the_matrix() {
    use cf2df::dfg::OpKind;
    let (mut macros, mut pairs) = (0usize, 0usize);
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = cf2df::lang::parse_to_cfg(src).unwrap();
        for (label, opts) in matrix() {
            let t = translate(&parsed.cfg, &parsed.alias, &opts)
                .unwrap_or_else(|e| panic!("{name}/{label}: {e}"));
            certify(&t.dfg).unwrap_or_else(|defects| {
                panic!("{name}/{label}: fused graph no longer certifies: {defects:?}")
            });
            for op in t.dfg.op_ids() {
                match t.dfg.kind(op) {
                    OpKind::Macro { .. } => macros += 1,
                    OpKind::LoopSwitch { .. } => pairs += 1,
                    _ => {}
                }
            }
        }
    }
    assert!(macros > 0, "no corpus graph grew a macro — vacuous test");
    assert!(pairs > 0, "no corpus graph fused a loop-entry/switch pair");
}

/// Defect variants each mutation class is expected to surface as. A
/// detection outside this set means the checker tripped over collateral
/// damage rather than the injected bug.
fn expected_variants(class: MutationClass) -> &'static [DefectKind] {
    match class {
        // A dropped arc starves a port (structural / dead input), breaks a
        // rendezvous rate, unbalances a merge family, or severs a loop's
        // backedge or exit coverage.
        MutationClass::DropArc => &[
            DefectKind::Structural,
            DefectKind::DeadInput,
            DefectKind::RateMismatch,
            DefectKind::ConditionalEnd,
            DefectKind::BackedgeGap,
            DefectKind::DroppedToken,
            DefectKind::TagLeak,
        ],
        // A retargeted switch output delivers under the wrong guard:
        // colliding or mismatched contexts downstream, a loop exit that no
        // longer contradicts its backedge, an uncovered iteration context,
        // or an emptied arm that now silently drops its tokens.
        MutationClass::RetargetSwitchOutput => &[
            DefectKind::DroppedToken,
            DefectKind::MergeCollision,
            DefectKind::RateMismatch,
            DefectKind::DeadInput,
            DefectKind::UngatedLoopExit,
            DefectKind::UnguardedBackedge,
            DefectKind::BackedgeGap,
            DefectKind::ConditionalEnd,
        ],
        // Without its exit the loop's iteration tag survives outward, the
        // backedge loses coverage, and downstream rendezvous see tagged
        // against untagged contexts.
        MutationClass::DeleteLoopExit => &[
            DefectKind::TagLeak,
            DefectKind::MissingLoopTag,
            DefectKind::BackedgeGap,
            DefectKind::UnguardedBackedge,
            DefectKind::RateMismatch,
            DefectKind::ConditionalEnd,
            DefectKind::UngatedCycle,
        ],
        // A merge demoted to a strict rendezvous has several arcs into one
        // strict port — a structural defect (or a rate/collision one when
        // structure alone cannot tell).
        MutationClass::SwapMergeForStrict => &[
            DefectKind::Structural,
            DefectKind::RateMismatch,
            DefectKind::MergeCollision,
        ],
    }
}

#[test]
fn mutation_harness_detects_every_class_with_an_expected_variant() {
    let mut applied_per_class = [0usize; MutationClass::ALL.len()];
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = cf2df::lang::parse_to_cfg(src).unwrap();
        for (label, opts) in matrix() {
            let t = translate(&parsed.cfg, &parsed.alias, &opts)
                .unwrap_or_else(|e| panic!("{name}/{label}: {e}"));
            for (ci, class) in MutationClass::ALL.into_iter().enumerate() {
                for seed in 0..4u64 {
                    let mut g = t.dfg.clone();
                    let Some(m) = mutate(&mut g, class, seed) else {
                        continue;
                    };
                    applied_per_class[ci] += 1;
                    let defects = certify(&g).expect_err(&format!(
                        "{name}/{label}: {} seed {seed} undetected: {}",
                        class.name(),
                        m.description
                    ));
                    assert!(
                        defects
                            .iter()
                            .any(|d| expected_variants(class).contains(&d.kind)),
                        "{name}/{label}: {} seed {seed} ({}) detected only as {:?}",
                        class.name(),
                        m.description,
                        defects.iter().map(|d| d.kind).collect::<Vec<_>>()
                    );
                }
            }
        }
    }
    for (ci, class) in MutationClass::ALL.into_iter().enumerate() {
        assert!(
            applied_per_class[ci] > 0,
            "{}: no corpus graph offered a mutation site",
            class.name()
        );
    }
}

#[test]
fn missing_loop_exit_is_rejected_statically_not_at_runtime() {
    // Any looping corpus program will do; gcd is the smallest.
    let parsed = cf2df::lang::parse_to_cfg(
        cf2df::lang::corpus::all()
            .iter()
            .find(|(n, _)| *n == "gcd")
            .expect("gcd is in the corpus")
            .1,
    )
    .unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let mut g = t.dfg.clone();
    let m = mutate(&mut g, MutationClass::DeleteLoopExit, 0).expect("gcd has a loop exit");

    // Structural validation alone accepts the graph — this bug class used
    // to reach the simulator, which stalls or leaks the iteration tag.
    validate(&g).unwrap_or_else(|e| {
        panic!("structural validate should accept the mutant ({}): {e:?}", m.description)
    });
    // The certifier rejects it statically, as a tag leak.
    let defects = certify(&g).expect_err("deleted loop exit must not certify");
    assert!(
        defects.iter().any(|d| matches!(
            d.kind,
            DefectKind::TagLeak | DefectKind::MissingLoopTag
        )),
        "expected a tag-leak defect, got {defects:?}"
    );
}

#[test]
fn certify_report_renders_machine_readable_json() {
    let parsed = cf2df::lang::parse_to_cfg("x := 1; y := x + 2;").unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let json = t.certify.expect("certify ran").to_json();
    assert!(json.starts_with("{\"clean\":true"), "unexpected JSON: {json}");
    assert!(json.contains("\"memory_pairs_checked\":"), "unexpected JSON: {json}");
}
