//! Fault-injection (chaos) hardening of the threaded executor.
//!
//! The contract under test: a threaded run either matches the
//! deterministic simulator bit-for-bit, or returns a *typed*
//! [`MachineError`] — it never hangs, never aborts the process, and
//! never silently corrupts results. Faults are injected
//! deterministically per `(seed, worker)` (see `cf2df::machine::chaos`),
//! so every failure here is reproducible.

use cf2df::cfg::{MemLayout, VarTable};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::dfg::graph::ArcKind;
use cf2df::dfg::{Dfg, OpKind, Port};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::parallel::{run_threaded_pooled_with, run_threaded_with};
use cf2df::machine::{run, ChaosConfig, ExecutorPool, MachineConfig, MachineError, ParConfig};
use std::time::Duration;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Translate a corpus program under schema2 and return the graph,
/// layout, and the simulator oracle's outcome.
fn translated(src: &str) -> (Dfg, MemLayout, cf2df::machine::Outcome) {
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    (t.dfg, layout, sim)
}

fn with_watchdog(chaos: Option<ChaosConfig>) -> ParConfig {
    ParConfig {
        watchdog: Some(Duration::from_secs(10)),
        chaos,
        ..ParConfig::default()
    }
}

/// Swallow the expected "chaos: …" panic messages (the default hook
/// prints a backtrace per injected panic); leave real panics loud.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("chaos: "));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// An operator that panics on its very first firing must surface as
/// `WorkerPanicked` — contained, typed, within the watchdog bound — at
/// every worker count. The process must not abort.
#[test]
fn injected_operator_panic_is_contained_at_every_width() {
    quiet_chaos_panics();
    let (g, layout, _) = translated(cf2df::lang::corpus::GCD);
    for workers in WORKERS {
        let cfg = with_watchdog(Some(ChaosConfig {
            panic_prob: 1.0,
            ..ChaosConfig::off(11)
        }));
        let started = std::time::Instant::now();
        let (result, metrics, _) = run_threaded_with(&g, &layout, workers, &cfg);
        let err = result.expect_err("every firing panics; the run cannot succeed");
        match err {
            MachineError::WorkerPanicked { worker, payload } => {
                assert!(
                    worker < workers || worker == usize::MAX,
                    "worker index {worker} out of range at {workers} workers"
                );
                assert!(
                    payload.contains("chaos: injected operator panic"),
                    "unexpected payload: {payload}"
                );
            }
            other => panic!("expected WorkerPanicked at {workers} workers, got {other}"),
        }
        assert!(metrics.chaos.panics > 0, "panic was tallied");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "containment exceeded the watchdog bound at {workers} workers"
        );
    }
}

/// A pool that contained a panicking run stays usable: subsequent clean
/// runs on the *same* pool must still match the simulator.
#[test]
fn pool_survives_contained_panics_and_stays_usable() {
    quiet_chaos_panics();
    let (g, layout, sim) = translated(cf2df::lang::corpus::NESTED);
    let pool = ExecutorPool::new(4);
    for round in 0..3 {
        let cfg = with_watchdog(Some(ChaosConfig {
            panic_prob: 1.0,
            ..ChaosConfig::off(round)
        }));
        let (result, _, _) = run_threaded_pooled_with(&g, &layout, &pool, &cfg);
        assert!(
            matches!(result, Err(MachineError::WorkerPanicked { .. })),
            "round {round}: expected a contained panic"
        );
        let (clean, metrics, _) =
            run_threaded_pooled_with(&g, &layout, &pool, &with_watchdog(None));
        let out = clean.unwrap_or_else(|e| panic!("round {round}: clean run failed: {e}"));
        assert_eq!(out.memory, sim.memory, "round {round}");
        assert_eq!(out.fired, sim.stats.fired, "round {round}");
        assert_eq!(metrics.chaos.total(), 0, "clean run injected nothing");
    }
}

/// Dropping every emitted token must be *diagnosed*: the run ends in
/// `TokenLeak`, not a hang and not a silent wrong answer.
#[test]
fn dropped_tokens_surface_as_token_leak() {
    let (g, layout, _) = translated(cf2df::lang::corpus::GCD);
    for workers in [2, 8] {
        let cfg = with_watchdog(Some(ChaosConfig {
            drop_prob: 1.0,
            ..ChaosConfig::off(5)
        }));
        let (result, metrics, _) = run_threaded_with(&g, &layout, workers, &cfg);
        match result {
            Err(MachineError::TokenLeak { leftover }) => {
                assert!(leftover > 0, "a leak must account for the dropped tokens");
                assert!(
                    metrics.chaos.drops <= leftover,
                    "leftover covers at least the injected drops"
                );
            }
            other => panic!("expected TokenLeak at {workers} workers, got {other:?}"),
        }
        assert!(metrics.chaos.drops > 0);
    }
}

/// Duplicated tokens hit the waiting-matching store — the ETS machine's
/// architectural point of duplicate detection. Every dup'd run either
/// reports `TokenCollision` or completes bit-for-bit equal (the copy
/// landed in a slot that never completed).
#[test]
fn duplicated_tokens_collide_or_stay_equivalent() {
    let (g, layout, sim) = translated(cf2df::lang::corpus::GCD);
    let mut collisions = 0;
    for seed in 0..4 {
        for workers in [2, 8] {
            let cfg = with_watchdog(Some(ChaosConfig {
                dup_prob: 1.0,
                ..ChaosConfig::off(seed)
            }));
            let (result, metrics, _) = run_threaded_with(&g, &layout, workers, &cfg);
            match result {
                Ok(out) => {
                    assert_eq!(out.memory, sim.memory, "seed {seed} workers {workers}");
                    assert_eq!(out.fired, sim.stats.fired, "seed {seed} workers {workers}");
                }
                Err(MachineError::TokenCollision { .. }) => collisions += 1,
                Err(other) => {
                    panic!("seed {seed} workers {workers}: unexpected error {other}")
                }
            }
            assert!(metrics.chaos.dups > 0, "dups were injected");
        }
    }
    assert!(
        collisions > 0,
        "dup_prob 1.0 never tripped the collision detector across 8 runs"
    );
}

/// Exhausting the tag space in a deep loop nest returns the typed
/// `TagSpaceExhausted` through the halt path — the regression test for
/// the former `expect("too many tags")` abort.
#[test]
fn deep_loop_nest_exhausts_capped_tag_space_cleanly() {
    let src = "
        s := 0; i := 0;
        while i < 6 do {
            j := 0;
            while j < 6 do {
                k := 0;
                while k < 6 do { s := s + k; k := k + 1; }
                j := j + 1;
            }
            i := i + 1;
        }
    ";
    let (g, layout, sim) = translated(src);
    // Sanity: uncapped, the nest runs and matches the oracle.
    let (ok, _, _) = run_threaded_with(&g, &layout, 4, &with_watchdog(None));
    assert_eq!(ok.unwrap().memory, sim.memory);
    // Capped far below the nest's tag demand: typed error, no panic.
    let cfg = ParConfig {
        tag_cap: 64,
        watchdog: Some(Duration::from_secs(10)),
        ..ParConfig::default()
    };
    for workers in WORKERS {
        let (result, _, _) = run_threaded_with(&g, &layout, workers, &cfg);
        match result {
            Err(MachineError::TagSpaceExhausted { cap, invocation }) => {
                assert_eq!((cap, invocation), (64, None))
            }
            other => panic!("expected TagSpaceExhausted at {workers} workers, got {other:?}"),
        }
    }
}

/// A spin graph (merge/identity cycle that never reaches End): start →
/// merge → identity → merge. Fuel bounds it with `FuelExhausted`; the
/// wall-clock watchdog bounds it with `WatchdogTimeout`.
fn spin_graph() -> (Dfg, MemLayout) {
    let mut t = VarTable::new();
    t.scalar("x");
    let layout = MemLayout::distinct(&t);
    let mut g = Dfg::new();
    let s = g.add(OpKind::Start);
    let m = g.add(OpKind::Merge);
    let id = g.add(OpKind::Identity);
    let e = g.add(OpKind::End { inputs: 1 });
    g.connect(Port::new(s, 0), Port::new(m, 0), ArcKind::Value);
    g.connect(Port::new(m, 0), Port::new(id, 0), ArcKind::Value);
    g.connect(Port::new(id, 0), Port::new(m, 0), ArcKind::Value);
    // End is fed by an identity that never receives a token: the cycle
    // spins forever unless fuel or the watchdog stops it.
    let starved = g.add(OpKind::Identity);
    g.connect(Port::new(starved, 0), Port::new(e, 0), ArcKind::Value);
    (g, layout)
}

#[test]
fn runaway_graph_is_bounded_by_fuel() {
    let (g, layout) = spin_graph();
    for workers in [1, 4] {
        let cfg = ParConfig {
            fuel: 1_000,
            watchdog: Some(Duration::from_secs(10)),
            ..ParConfig::default()
        };
        let (result, _, _) = run_threaded_with(&g, &layout, workers, &cfg);
        assert_eq!(
            result.expect_err("spin graph must exhaust fuel"),
            MachineError::FuelExhausted,
            "at {workers} workers"
        );
    }
}

#[test]
fn runaway_graph_is_bounded_by_the_watchdog() {
    let (g, layout) = spin_graph();
    let cfg = ParConfig {
        watchdog: Some(Duration::from_millis(100)),
        ..ParConfig::default()
    };
    let started = std::time::Instant::now();
    let (result, _, _) = run_threaded_with(&g, &layout, 4, &cfg);
    match result {
        Err(MachineError::WatchdogTimeout { millis }) => assert_eq!(millis, 100),
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "watchdog halt took {:?}", started.elapsed()
    );
}

/// Benign chaos (delays + forced steals) perturbs only the *schedule*:
/// over the whole corpus, at every width, results must stay bit-for-bit
/// equal to the simulator.
#[test]
fn benign_chaos_preserves_corpus_equivalence() {
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let t = match translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let layout = MemLayout::distinct(&t.cfg.vars);
        let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        for seed in [3, 17] {
            for workers in WORKERS {
                let cfg = with_watchdog(Some(ChaosConfig::perturb(seed)));
                let (result, metrics, _) = run_threaded_with(&t.dfg, &layout, workers, &cfg);
                let out = result.unwrap_or_else(|e| {
                    panic!("{name} seed {seed} workers {workers}: benign chaos failed: {e}")
                });
                assert_eq!(out.memory, sim.memory, "{name} seed {seed} workers {workers}");
                assert_eq!(
                    out.ist_memory, sim.ist_memory,
                    "{name} seed {seed} workers {workers}"
                );
                assert_eq!(
                    out.fired, sim.stats.fired,
                    "{name} seed {seed} workers {workers}"
                );
                assert_eq!(metrics.chaos.panics + metrics.chaos.drops + metrics.chaos.dups, 0);
            }
        }
    }
}

/// Chaos under fusion: compound actors (macros and fused loop-switches)
/// go through the same containment paths as fine-grain operators. Under
/// benign chaos a fully-fused graph still matches its unfused twin
/// bit-for-bit; under injected duplicates the compound loop-switch slot
/// either trips the collision detector or stays equivalent.
#[test]
fn fused_graphs_survive_chaos_like_unfused_ones() {
    quiet_chaos_panics();
    for (name, src) in [
        ("gcd", cf2df::lang::corpus::GCD),
        ("nested", cf2df::lang::corpus::NESTED),
    ] {
        let parsed = parse_to_cfg(src).unwrap();
        let opts = TranslateOptions::full_parallel_schema3();
        let unfused =
            translate(&parsed.cfg, &parsed.alias, &opts.clone().with_fuse(false)).unwrap();
        let fused = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
        assert!(
            fused.chains_fused + fused.ops_fused > 0,
            "{name}: nothing fused — vacuous chaos case"
        );
        let layout = MemLayout::distinct(&unfused.cfg.vars);
        let oracle = run(&unfused.dfg, &layout, MachineConfig::unbounded()).unwrap();
        for seed in [3, 17] {
            for workers in [2, 8] {
                // Benign chaos: schedule perturbation only, results exact.
                let cfg = with_watchdog(Some(ChaosConfig::perturb(seed)));
                let (result, _, _) = run_threaded_with(&fused.dfg, &layout, workers, &cfg);
                let out = result.unwrap_or_else(|e| {
                    panic!("{name} seed {seed} workers {workers}: fused benign chaos: {e}")
                });
                assert_eq!(out.memory, oracle.memory, "{name} seed {seed} w{workers}");
                assert_eq!(out.ist_memory, oracle.ist_memory, "{name} seed {seed} w{workers}");
                // Duplicated tokens: collide in the waiting-matching
                // store (compound slots included) or change nothing.
                let cfg = with_watchdog(Some(ChaosConfig {
                    dup_prob: 1.0,
                    ..ChaosConfig::off(seed)
                }));
                let (result, metrics, _) = run_threaded_with(&fused.dfg, &layout, workers, &cfg);
                match result {
                    Ok(out) => assert_eq!(out.memory, oracle.memory, "{name} dup w{workers}"),
                    Err(MachineError::TokenCollision { .. }) => {}
                    Err(other) => {
                        panic!("{name} seed {seed} workers {workers}: unexpected error {other}")
                    }
                }
                assert!(metrics.chaos.dups > 0, "dups were injected");
            }
        }
    }
}

/// An injected operator panic inside a multiplexed serving session is a
/// *per-invocation* event: the invocation whose token panicked fails
/// with `WorkerPanicked`, every other inflight invocation completes
/// bit-for-bit equal to the simulator, and the pool stays reusable for
/// a clean session afterwards. Swept over seeds and panic probabilities
/// until both outcomes (a contained failure and an unharmed neighbor)
/// have been observed in a single session.
#[test]
fn serve_contains_panics_to_the_failing_invocation() {
    use cf2df::machine::{compile, run_concurrent};

    quiet_chaos_panics();
    let parsed = parse_to_cfg(cf2df::lang::corpus::GCD).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    let cg = compile(&t.dfg).unwrap();
    let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    let pool = ExecutorPool::new(4);

    let mut saw_failure = false;
    let mut saw_mixed_session = false;
    'sweep: for prob in [0.002, 0.01, 0.05] {
        for seed in 0..8u64 {
            let cfg = with_watchdog(Some(ChaosConfig {
                panic_prob: prob,
                ..ChaosConfig::off(seed)
            }));
            let (results, stats) = run_concurrent(&cg, &layout, &pool, 4, &cfg, 12);
            let mut ok = 0;
            let mut failed = 0;
            for (i, res) in results.into_iter().enumerate() {
                match res {
                    Ok(out) => {
                        ok += 1;
                        assert_eq!(
                            out.memory, sim.memory,
                            "prob {prob} seed {seed} request {i}: a surviving \
                             invocation must be exact"
                        );
                        assert_eq!(out.fired, sim.stats.fired, "request {i}");
                    }
                    Err(MachineError::WorkerPanicked { payload, .. }) => {
                        failed += 1;
                        assert!(
                            payload.contains("chaos: injected operator panic"),
                            "unexpected payload: {payload}"
                        );
                    }
                    Err(other) => {
                        panic!("prob {prob} seed {seed} request {i}: unexpected {other}")
                    }
                }
            }
            assert_eq!(stats.completed_ok, ok, "stats agree with results");
            assert_eq!(stats.failed, failed, "stats agree with results");
            saw_failure |= failed > 0;
            saw_mixed_session |= failed > 0 && ok > 0;
            // The pool must be reusable after containment: a clean
            // session on the same pool stays exact.
            let (clean, cstats) =
                run_concurrent(&cg, &layout, &pool, 4, &with_watchdog(None), 4);
            assert_eq!(cstats.completed_ok, 4, "clean session after containment");
            assert_eq!(cstats.chaos.total(), 0, "clean session injected nothing");
            for res in clean {
                assert_eq!(res.unwrap().memory, sim.memory);
            }
            if saw_mixed_session {
                break 'sweep;
            }
        }
    }
    assert!(saw_failure, "no injected panic ever landed — vacuous sweep");
    assert!(
        saw_mixed_session,
        "never observed a session with both a failed and a surviving invocation"
    );
}

/// Tag-space exhaustion inside a multiplexed session is typed *and
/// attributed*: every invocation of a deep loop nest under a tiny tag
/// cap fails with `TagSpaceExhausted` carrying its own request id, the
/// session completes (no hang), and the same pool then serves the nest
/// cleanly with the cap lifted.
#[test]
fn serve_attributes_tag_exhaustion_to_the_invocation() {
    use cf2df::machine::{compile, run_concurrent};

    let src = "
        s := 0; i := 0;
        while i < 6 do {
            j := 0;
            while j < 6 do {
                k := 0;
                while k < 6 do { s := s + k; k := k + 1; }
                j := j + 1;
            }
            i := i + 1;
        }
    ";
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    let cg = compile(&t.dfg).unwrap();
    let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    let pool = ExecutorPool::new(4);

    let capped = ParConfig {
        tag_cap: 64,
        watchdog: Some(Duration::from_secs(10)),
        ..ParConfig::default()
    };
    let (results, stats) = run_concurrent(&cg, &layout, &pool, 4, &capped, 8);
    assert_eq!(stats.failed, 8, "every capped invocation must fail");
    for (i, res) in results.into_iter().enumerate() {
        match res {
            Err(MachineError::TagSpaceExhausted { cap, invocation }) => {
                assert_eq!(cap, 64, "request {i}");
                assert_eq!(
                    invocation,
                    Some(i as u64),
                    "request {i}: the error must name the offending invocation"
                );
            }
            other => panic!("request {i}: expected TagSpaceExhausted, got {other:?}"),
        }
    }
    // Same pool, cap lifted: the nest serves cleanly.
    let (clean, cstats) = run_concurrent(&cg, &layout, &pool, 4, &with_watchdog(None), 4);
    assert_eq!(cstats.completed_ok, 4);
    for res in clean {
        assert_eq!(res.unwrap().memory, sim.memory);
    }
}

/// Ordinary runs (no chaos config at all) must tally zero faults.
#[test]
fn ordinary_runs_inject_nothing() {
    let (g, layout, sim) = translated(cf2df::lang::corpus::REDUCTION);
    let (result, metrics, _) = run_threaded_with(&g, &layout, 4, &ParConfig::default());
    assert_eq!(result.unwrap().memory, sim.memory);
    assert_eq!(metrics.chaos, Default::default());
    for w in &metrics.workers {
        assert_eq!(w.chaos_delays, 0);
        assert_eq!(w.chaos_forced_steals, 0);
    }
}
