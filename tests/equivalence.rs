//! Differential semantics tests: every translation schema, executed on the
//! dataflow machine, must compute exactly the final memory of the
//! sequential von Neumann interpreter — the paper's core correctness
//! claim for each schema.

use cf2df::bench::workloads::{random_program, GenConfig};
use cf2df::cfg::{CoverStrategy, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::{run, vonneumann, MachineConfig};

fn all_configs() -> Vec<(&'static str, TranslateOptions)> {
    vec![
        ("schema1", TranslateOptions::schema1()),
        (
            "schema3-singletons",
            TranslateOptions::schema3(CoverStrategy::Singletons),
        ),
        (
            "schema3-classes",
            TranslateOptions::schema3(CoverStrategy::AliasClasses),
        ),
        (
            "schema3-single-token",
            TranslateOptions::schema3(CoverStrategy::SingleToken),
        ),
        (
            "optimized",
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
        ),
        (
            "optimized+memelim",
            TranslateOptions::schema3(CoverStrategy::Singletons)
                .with_optimized(true)
                .with_memory_elimination(true),
        ),
        (
            "optimized+readpar",
            TranslateOptions::schema3(CoverStrategy::Singletons)
                .with_optimized(true)
                .with_read_parallelization(true),
        ),
        ("full-parallel", TranslateOptions::full_parallel_schema3()),
    ]
}

fn check_program(name: &str, src: &str, machine: &MachineConfig) {
    let parsed = parse_to_cfg(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let oracle = vonneumann::interpret(&parsed.cfg, &layout, machine)
        .unwrap_or_else(|e| panic!("{name}: baseline: {e}"));
    for (label, opts) in all_configs() {
        let t = translate(&parsed.cfg, &parsed.alias, &opts)
            .unwrap_or_else(|e| panic!("{name}/{label}: translate: {e}"));
        let out = run(&t.dfg, &layout, machine.clone())
            .unwrap_or_else(|e| panic!("{name}/{label}: machine: {e}\n{}", t.dfg.pretty()));
        assert_eq!(
            out.memory, oracle.memory,
            "{name}/{label}: final memory differs from sequential semantics"
        );
        assert_eq!(
            out.stats.leftover_tokens, 0,
            "{name}/{label}: translation must drain cleanly"
        );
    }
}

#[test]
fn corpus_is_equivalent_under_every_schema() {
    let mc = MachineConfig::unbounded();
    for (name, src) in cf2df::lang::corpus::all() {
        check_program(name, src, &mc);
    }
}

#[test]
fn corpus_is_equivalent_with_high_memory_latency() {
    // Latency skew exercises cross-iteration overlap and split-phase
    // ordering.
    let mc = MachineConfig::unbounded().mem_latency(17);
    for (name, src) in cf2df::lang::corpus::all() {
        check_program(name, src, &mc);
    }
}

#[test]
fn corpus_is_equivalent_on_finite_processors() {
    for p in [1, 2, 7] {
        let mc = MachineConfig::with_processors(p);
        for (name, src) in cf2df::lang::corpus::all() {
            check_program(name, src, &mc);
        }
    }
}

#[test]
fn random_programs_are_equivalent() {
    let gencfg = GenConfig::default();
    let mc = MachineConfig::unbounded();
    for seed in 0..60 {
        let src = random_program(seed, &gencfg);
        check_program(&format!("seed{seed}"), &src, &mc);
    }
}

#[test]
fn random_programs_with_latency_skew() {
    let gencfg = GenConfig {
        n_vars: 4,
        max_depth: 2,
        ..GenConfig::default()
    };
    let mc = MachineConfig::unbounded().mem_latency(9).op_latency(2);
    for seed in 100..130 {
        let src = random_program(seed, &gencfg);
        check_program(&format!("seed{seed}"), &src, &mc);
    }
}

#[test]
fn schema3_correct_under_every_consistent_binding() {
    // Schema 3's promise: the same dataflow graph is correct whatever the
    // concrete aliasing, as long as it is consistent with the declared
    // alias structure. Enumerate all consistent bindings of the FORTRAN
    // example and compare against the baseline under each.
    let parsed = parse_to_cfg(cf2df::lang::corpus::FORTRAN_ALIAS).unwrap();
    let bindings = parsed.alias.consistent_bindings();
    assert_eq!(bindings.len(), 3, "X~Z, Y~Z, all distinct");
    let mc = MachineConfig::unbounded().mem_latency(5);
    for strategy in [
        CoverStrategy::Singletons,
        CoverStrategy::AliasClasses,
        CoverStrategy::SingleToken,
    ] {
        let opts = TranslateOptions::schema3(strategy.clone());
        let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
        for binding in &bindings {
            let layout = MemLayout::with_binding(&parsed.cfg.vars, binding);
            let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            assert_eq!(
                out.memory, oracle.memory,
                "cover {strategy:?} wrong under binding {binding:?}"
            );
        }
    }
}

#[test]
fn optimized_schema3_correct_under_bindings() {
    let parsed = parse_to_cfg(cf2df::lang::corpus::FORTRAN_ALIAS).unwrap();
    let mc = MachineConfig::unbounded();
    let opts = TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true);
    let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
    for binding in parsed.alias.consistent_bindings() {
        let layout = MemLayout::with_binding(&parsed.cfg.vars, &binding);
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        let out = run(&t.dfg, &layout, mc.clone()).unwrap();
        assert_eq!(out.memory, oracle.memory);
    }
}

#[test]
fn threaded_executor_matches_simulator() {
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
        )
        .unwrap();
        let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        for threads in [1, 4] {
            let par = cf2df::machine::parallel::run_threaded(&t.dfg, &layout, threads)
                .unwrap_or_else(|e| panic!("{name} threads={threads}: {e}"));
            assert_eq!(par.memory, sim.memory, "{name} threads={threads}");
        }
    }
}

#[test]
fn emitted_goto_form_preserves_semantics() {
    // CFG → flat goto-form source → CFG: the interpreter must compute the
    // same memory (aliasing declarations are not carried by goto form, so
    // the aliased corpus entry is compared under distinct layouts only).
    let mc = MachineConfig::default();
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let emitted = cf2df::lang::emit::emit_goto_form(&parsed.cfg);
        let reparsed = parse_to_cfg(&emitted).unwrap_or_else(|e| panic!("{name}: {e}"));
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let a = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        let b = vonneumann::interpret(&reparsed.cfg, &layout, &mc).unwrap();
        assert_eq!(a.memory, b.memory, "{name}");
    }
}

#[test]
fn emitted_split_graph_preserves_semantics() {
    // Node splitting then emission: the split graph is a real program.
    for seed in [7u64, 84, 123] {
        let src = cf2df::bench::workloads::goto_soup(seed, 6);
        let parsed = parse_to_cfg(&src).unwrap();
        let split = cf2df::cfg::loop_control::split_irreducible(&parsed.cfg).unwrap();
        let emitted = cf2df::lang::emit::emit_goto_form(&split);
        let reparsed = parse_to_cfg(&emitted).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let mc = MachineConfig::default();
        let a = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        let b = vonneumann::interpret(&reparsed.cfg, &layout, &mc).unwrap();
        assert_eq!(a.memory, b.memory, "seed {seed}");
    }
}

#[test]
fn aliased_arrays_correct_under_both_bindings() {
    // FORTRAN-style array parameters that may alias: the same translated
    // graph must be correct whether the arrays share storage or not. Note
    // the result genuinely differs per binding (the reading loop sees the
    // writes only when they share), so this exercises real may-alias
    // ordering, not a coincidence.
    let src = "
        array a[6];
        array b[6];
        alias a ~ b;
        for i := 0 to 5 do { a[i] := i * 2; }
        s := 0;
        for j := 0 to 5 do { s := s + b[j]; }
        b[0] := 99;
        t := a[0];
    ";
    let parsed = parse_to_cfg(src).unwrap();
    let va = parsed.cfg.vars.lookup("a").unwrap();
    let vb = parsed.cfg.vars.lookup("b").unwrap();
    let s_var = parsed.cfg.vars.lookup("s").unwrap();
    let mut seen_sums = Vec::new();
    for binding in [vec![vec![va], vec![vb]], vec![vec![va, vb]]] {
        let layout = MemLayout::with_binding(&parsed.cfg.vars, &binding);
        let oracle =
            vonneumann::interpret(&parsed.cfg, &layout, &MachineConfig::default()).unwrap();
        seen_sums.push(oracle.memory[layout.base(s_var) as usize]);
        for strat in [CoverStrategy::Singletons, CoverStrategy::AliasClasses] {
            for optimized in [false, true] {
                let t = translate(
                    &parsed.cfg,
                    &parsed.alias,
                    &TranslateOptions::schema3(strat.clone()).with_optimized(optimized),
                )
                .unwrap();
                let out = run(&t.dfg, &layout, MachineConfig::unbounded().mem_latency(7))
                    .unwrap();
                assert_eq!(
                    out.memory, oracle.memory,
                    "binding {binding:?} under {strat:?} optimized={optimized}"
                );
            }
        }
    }
    assert_ne!(seen_sums[0], seen_sums[1], "bindings observably differ");
}
