//! Equivalence of the multi-threaded executor and the deterministic
//! simulator over the whole corpus, at 1, 2, 4, and 8 workers.
//!
//! The threaded executor (`cf2df::machine::parallel`) runs tokens
//! through the std-only work-stealing scheduler with sharded tags,
//! striped I-structure memory, and atomic scalar cells; none of that
//! may change what a program computes. For every corpus program and
//! every translation level we run the deterministic simulator as the
//! oracle and assert that the final ordinary memory, the final
//! I-structure memory, and the number of fired operators all match at
//! every worker count.

use cf2df::cfg::MemLayout;
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::lang::parse_to_cfg;
use cf2df::machine::parallel::run_threaded;
use cf2df::machine::{run, MachineConfig};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn check_corpus(opts: &TranslateOptions, label: &str) {
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let t = match translate(&parsed.cfg, &parsed.alias, opts) {
            Ok(t) => t,
            // A few corpus programs are rejected by stricter schemas
            // (e.g. irreducible ones without node splitting); the
            // simulator would reject them identically, so skip.
            Err(_) => continue,
        };
        let layout = MemLayout::distinct(&t.cfg.vars);
        let sim = run(&t.dfg, &layout, MachineConfig::unbounded())
            .unwrap_or_else(|e| panic!("{label}/{name}: simulator failed: {e:?}"));
        for workers in WORKERS {
            let par = run_threaded(&t.dfg, &layout, workers).unwrap_or_else(|e| {
                panic!("{label}/{name} at {workers} workers: executor failed: {e:?}")
            });
            assert_eq!(
                par.memory, sim.memory,
                "{label}/{name}: memory diverged at {workers} workers"
            );
            assert_eq!(
                par.ist_memory, sim.ist_memory,
                "{label}/{name}: I-structure memory diverged at {workers} workers"
            );
            assert_eq!(
                par.fired, sim.stats.fired,
                "{label}/{name}: fired-op count diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn corpus_matches_simulator_schema1() {
    check_corpus(&TranslateOptions::schema1(), "schema1");
}

#[test]
fn corpus_matches_simulator_schema2() {
    check_corpus(&TranslateOptions::schema2(), "schema2");
}

#[test]
fn corpus_matches_simulator_optimized() {
    check_corpus(&TranslateOptions::optimized(), "optimized");
}

#[test]
fn corpus_matches_simulator_full_parallel() {
    check_corpus(&TranslateOptions::full_parallel(), "full_parallel");
}

/// Macro-op fusion is execution-invisible: across the corpus, at every
/// schema and worker count, a fused run computes the same final memory
/// as its unfused twin, and the elided-operator tally exactly explains
/// the missing firings (`fired_unfused == fired_fused + ops_elided`).
#[test]
fn fused_runs_match_unfused_across_the_corpus() {
    let schemas = [
        ("schema1", TranslateOptions::schema1()),
        ("schema2", TranslateOptions::schema2()),
        (
            "schema3",
            TranslateOptions::schema3(cf2df::cfg::CoverStrategy::Singletons),
        ),
        ("full", TranslateOptions::full_parallel_schema3()),
    ];
    let mut elided_total = 0u64;
    for (label, opts) in schemas {
        for (name, src) in cf2df::lang::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            let (unfused, fused) = match (
                translate(&parsed.cfg, &parsed.alias, &opts.clone().with_fuse(false)),
                translate(&parsed.cfg, &parsed.alias, &opts.clone().with_fuse(true)),
            ) {
                (Ok(u), Ok(f)) => (u, f),
                _ => continue, // rejected by the stricter schema; covered elsewhere
            };
            let layout = MemLayout::distinct(&unfused.cfg.vars);
            let oracle = run(&unfused.dfg, &layout, MachineConfig::unbounded())
                .unwrap_or_else(|e| panic!("{label}/{name}: unfused simulator failed: {e:?}"));
            for workers in WORKERS {
                let base = run_threaded(&unfused.dfg, &layout, workers).unwrap_or_else(|e| {
                    panic!("{label}/{name} unfused at {workers} workers: {e:?}")
                });
                let coarse = run_threaded(&fused.dfg, &layout, workers).unwrap_or_else(|e| {
                    panic!("{label}/{name} fused at {workers} workers: {e:?}")
                });
                assert_eq!(
                    coarse.memory, oracle.memory,
                    "{label}/{name}: fusion changed memory at {workers} workers"
                );
                assert_eq!(
                    coarse.ist_memory, oracle.ist_memory,
                    "{label}/{name}: fusion changed I-structures at {workers} workers"
                );
                assert_eq!(
                    base.fired,
                    coarse.fired + coarse.metrics.ops_elided,
                    "{label}/{name} at {workers} workers: elided ops must exactly \
                     explain the firing gap"
                );
                assert_eq!(
                    base.metrics.ops_elided, 0,
                    "{label}/{name}: an unfused run has nothing to elide"
                );
                elided_total += coarse.metrics.ops_elided;
            }
        }
    }
    assert!(elided_total > 0, "no corpus graph actually fused — vacuous test");
}

/// Compile-once is execution-invisible: lowering a certified graph to
/// the dense [`cf2df::machine::CompiledGraph`] once and reusing it —
/// through both the simulator's and the threaded executor's compiled
/// entry points, across programs × schemas × 1/2/4/8 workers, fused and
/// unfused — produces exactly what the one-shot (compile-inside) entry
/// points produce.
#[test]
fn compiled_graphs_match_one_shot_runs_across_the_corpus() {
    use cf2df::machine::parallel::{run_threaded_compiled_pooled_with, ExecutorPool, ParConfig};
    use cf2df::machine::{compile, run_compiled, run_threaded_compiled};

    let schemas = [
        ("schema2-unfused", TranslateOptions::schema2().with_fuse(false)),
        ("schema2-fused", TranslateOptions::schema2().with_fuse(true)),
        (
            "schema3-fused",
            TranslateOptions::schema3(cf2df::cfg::CoverStrategy::Singletons).with_fuse(true),
        ),
        ("full", TranslateOptions::full_parallel_schema3()),
    ];
    for (label, opts) in &schemas {
        for (name, src) in cf2df::lang::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            let t = match translate(&parsed.cfg, &parsed.alias, opts) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let layout = MemLayout::distinct(&t.cfg.vars);
            let cg = compile(&t.dfg)
                .unwrap_or_else(|e| panic!("{label}/{name}: compile failed: {e:?}"));
            let seed = run(&t.dfg, &layout, MachineConfig::unbounded())
                .unwrap_or_else(|e| panic!("{label}/{name}: one-shot simulator failed: {e:?}"));
            // Same CompiledGraph reused for every run below.
            for round in 0..2 {
                let sim = run_compiled(&cg, &layout, MachineConfig::unbounded()).unwrap();
                assert_eq!(sim.memory, seed.memory, "{label}/{name} round {round}");
                assert_eq!(sim.ist_memory, seed.ist_memory, "{label}/{name}");
                assert_eq!(sim.stats, seed.stats, "{label}/{name} round {round}");
            }
            for workers in WORKERS {
                let par = run_threaded_compiled(&cg, &layout, workers).unwrap_or_else(|e| {
                    panic!("{label}/{name} at {workers} workers: {e:?}")
                });
                assert_eq!(
                    par.memory, seed.memory,
                    "{label}/{name}: compiled-threaded memory diverged at {workers} workers"
                );
                assert_eq!(
                    par.ist_memory, seed.ist_memory,
                    "{label}/{name}: I-structures diverged at {workers} workers"
                );
                assert_eq!(
                    par.fired, seed.stats.fired,
                    "{label}/{name}: fired diverged at {workers} workers"
                );
            }
            // Pooled compiled entry point: one pool, repeated reuse.
            let pool = ExecutorPool::new(2);
            for round in 0..2 {
                let (res, _m, _t) =
                    run_threaded_compiled_pooled_with(&cg, &layout, &pool, &ParConfig::default());
                let par = res.unwrap();
                assert_eq!(par.memory, seed.memory, "{label}/{name} pooled round {round}");
                assert_eq!(par.fired, seed.stats.fired, "{label}/{name} pooled");
            }
        }
    }
}

/// Tag-space multiplexing is execution-invisible: every corpus program
/// submitted K=4 times *concurrently* onto one shared pool yields K
/// results each bit-for-bit identical to the simulator oracle — final
/// memory, I-structure memory, and fired-operator count — at every
/// worker width. The pool is shared across all programs of a width, so
/// this also exercises serving *different* compiled graphs back-to-back
/// on one pool.
#[test]
fn concurrent_submissions_match_simulator_across_the_corpus() {
    use cf2df::machine::parallel::{ExecutorPool, ParConfig};
    use cf2df::machine::{compile, run_concurrent};

    const K: usize = 4;
    let opts = TranslateOptions::full_parallel_schema3();
    for workers in WORKERS {
        let pool = ExecutorPool::new(workers);
        for (name, src) in cf2df::lang::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            let t = match translate(&parsed.cfg, &parsed.alias, &opts) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let layout = MemLayout::distinct(&t.cfg.vars);
            let cg = compile(&t.dfg)
                .unwrap_or_else(|e| panic!("{name}: compile failed: {e:?}"));
            let sim = run(&t.dfg, &layout, MachineConfig::unbounded())
                .unwrap_or_else(|e| panic!("{name}: simulator failed: {e:?}"));
            let (results, stats) =
                run_concurrent(&cg, &layout, &pool, K, &ParConfig::default(), K);
            assert_eq!(
                stats.completed_ok, K as u64,
                "{name} at {workers} workers: not every request completed"
            );
            assert_eq!(stats.requests, K as u64, "{name} at {workers} workers");
            for (i, res) in results.into_iter().enumerate() {
                let out = res.unwrap_or_else(|e| {
                    panic!("{name} request {i} at {workers} workers: {e:?}")
                });
                assert_eq!(
                    out.memory, sim.memory,
                    "{name} request {i}: memory diverged at {workers} workers"
                );
                assert_eq!(
                    out.ist_memory, sim.ist_memory,
                    "{name} request {i}: I-structures diverged at {workers} workers"
                );
                assert_eq!(
                    out.fired, sim.stats.fired,
                    "{name} request {i}: fired diverged at {workers} workers"
                );
            }
        }
    }
}

/// One executor pool multiplexes *different* compiled graphs with no
/// cross-talk: serving sessions of two distinct programs alternate on
/// the same pool, interleaved with solo pooled runs of a third, and
/// every result keeps matching its own program's oracle.
#[test]
fn one_pool_serves_different_graphs_without_cross_talk() {
    use cf2df::machine::parallel::{
        run_threaded_compiled_pooled_with, ExecutorPool, ParConfig,
    };
    use cf2df::machine::{compile, run_concurrent};

    let prep = |src: &str| {
        let parsed = parse_to_cfg(src).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::full_parallel_schema3(),
        )
        .unwrap();
        let layout = MemLayout::distinct(&t.cfg.vars);
        let cg = compile(&t.dfg).unwrap();
        let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        (cg, layout, sim)
    };
    let (cg_a, layout_a, sim_a) = prep(cf2df::lang::corpus::GCD);
    let (cg_b, layout_b, sim_b) = prep(cf2df::lang::corpus::NESTED);
    let (cg_c, layout_c, sim_c) = prep(cf2df::lang::corpus::REDUCTION);

    let pool = ExecutorPool::new(4);
    let cfg = ParConfig::default();
    for round in 0..3 {
        let (results, stats) = run_concurrent(&cg_a, &layout_a, &pool, 3, &cfg, 6);
        assert_eq!(stats.completed_ok, 6, "round {round}: graph A");
        for res in results {
            assert_eq!(res.unwrap().memory, sim_a.memory, "round {round}: graph A");
        }
        // A solo pooled run of a third graph between sessions.
        let (res, _, _) = run_threaded_compiled_pooled_with(&cg_c, &layout_c, &pool, &cfg);
        let out = res.unwrap();
        assert_eq!(out.memory, sim_c.memory, "round {round}: solo graph C");
        assert_eq!(out.fired, sim_c.stats.fired, "round {round}: solo graph C");
        let (results, stats) = run_concurrent(&cg_b, &layout_b, &pool, 3, &cfg, 6);
        assert_eq!(stats.completed_ok, 6, "round {round}: graph B");
        for res in results {
            let out = res.unwrap();
            assert_eq!(out.memory, sim_b.memory, "round {round}: graph B");
            assert_eq!(out.fired, sim_b.stats.fired, "round {round}: graph B");
        }
    }
}

/// Repeated runs at the widest width: schedule nondeterminism must
/// never leak into results (a smoke test for rendezvous/tag races).
#[test]
fn repeated_wide_runs_are_stable() {
    let src = cf2df::lang::corpus::NESTED;
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    let sim = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    for round in 0..16 {
        let par = run_threaded(&t.dfg, &layout, 8).unwrap();
        assert_eq!(par.memory, sim.memory, "round {round}");
        assert_eq!(par.fired, sim.stats.fired, "round {round}");
    }
}
