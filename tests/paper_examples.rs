//! Structural and behavioural reproduction of the paper's worked examples
//! (the figures), one test per figure.

use cf2df::cfg::{CoverStrategy, DomTree, LoopForest, MemLayout, Stmt};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::dfg::OpKind;
use cf2df::lang::parse_to_cfg;
use cf2df::machine::{run, MachineConfig, MachineError};

/// Fig 1: the running example's CFG shape.
#[test]
fn fig1_running_example_cfg() {
    let parsed = parse_to_cfg(cf2df::lang::corpus::RUNNING_EXAMPLE).unwrap();
    let cfg = &parsed.cfg;
    assert_eq!(cfg.len(), 6); // start, end, join, 2 assigns, branch
    let join = cfg.entry();
    assert!(matches!(cfg.stmt(join), Stmt::Join));
    let s1 = cfg.succs(join)[0];
    let s2 = cfg.succs(s1)[0];
    let br = cfg.succs(s2)[0];
    assert_eq!(cfg.succs(br), &[join, cfg.end()]);
    // One cyclic interval, headed at the join.
    let forest = LoopForest::compute(cfg).unwrap();
    assert_eq!(forest.len(), 1);
    assert_eq!(forest.iter().next().unwrap().1.header, join);
}

/// Fig 2's operators behave as specified (switch routes, merge forwards,
/// synch waits) — exercised through a minimal graph.
#[test]
fn fig2_operator_semantics() {
    // Covered in unit tests of the machine; here, check the operators all
    // appear in a real translation of a conditional.
    let parsed = parse_to_cfg("x := 1; if x < 2 then { y := 1; } else { y := 2; } z := y;").unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let stats = &t.stats;
    assert!(stats.switches > 0, "forks become switches");
    assert!(stats.merges > 0, "joins become merges");
}

/// Figs 3–5: Schema 1 on the running example — sequential semantics with a
/// single circulating access token: average parallelism stays near 1.
#[test]
fn fig5_schema1_is_sequential() {
    let parsed = parse_to_cfg(cf2df::lang::corpus::RUNNING_EXAMPLE).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema1()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    let out = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    let par = out.stats.avg_parallelism();
    assert!(
        par < 2.0,
        "Schema 1 admits only expression parallelism, got {par:.2}"
    );
}

/// Figs 6–8: Schema 2 exposes parallelism across statements: higher
/// average parallelism than Schema 1 on the same program.
#[test]
fn fig8_schema2_outperforms_schema1() {
    let src = cf2df::lang::corpus::INDEPENDENT;
    let parsed = parse_to_cfg(src).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let t1 = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema1()).unwrap();
    let t2 = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let o1 = run(&t1.dfg, &layout, MachineConfig::unbounded()).unwrap();
    let o2 = run(&t2.dfg, &layout, MachineConfig::unbounded()).unwrap();
    assert_eq!(o1.memory, o2.memory);
    assert!(
        o2.stats.makespan * 2 <= o1.stats.makespan,
        "schema2 ({}) should be at least 2x shorter than schema1 ({})",
        o2.stats.makespan,
        o1.stats.makespan
    );
}

/// §3 / Fig 8 discussion: applying Schema 2 to a cyclic graph *without*
/// loop control "does not specify a meaningful dataflow computation" —
/// tokens from different iterations collide on one arc. The machine
/// detects exactly that.
/// A loop where y's per-iteration work is heavier than x's: without loop
/// control (hence without iteration tags), the predicate tokens of later
/// iterations pile up at y's switch while y lags behind — two tokens on
/// one arc under the same tag.
const SKEWED_LOOP: &str = "
l:
  y := y + 1;
  y := y + 3;
  y := y + 5;
  x := x + 1;
  if x < 8 then { goto l; } else { goto end; }
";

#[test]
fn fig8_without_loop_control_collides() {
    let parsed = parse_to_cfg(SKEWED_LOOP).unwrap();
    let opts = TranslateOptions::schema2().with_loop_control(false);
    let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
    // Slow memory: x's short chain laps y's long chain.
    let err = run(&t.dfg, &MemLayout::distinct(&t.cfg.vars),
        MachineConfig::unbounded().mem_latency(10))
    .unwrap_err();
    assert!(
        matches!(err, MachineError::TokenCollision { .. }),
        "expected a token collision, got: {err}"
    );
    // The same graph with loop control runs clean and gets the right
    // answer.
    let t2 = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t2.cfg.vars);
    let out = run(&t2.dfg, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
    let oracle = cf2df::machine::vonneumann::interpret(
        &parsed.cfg,
        &layout,
        &MachineConfig::default(),
    )
    .unwrap();
    assert_eq!(out.memory, oracle.memory);
}

/// With loop control the same program runs cleanly under the same skew.
#[test]
fn fig8_with_loop_control_is_clean() {
    let parsed = parse_to_cfg(cf2df::lang::corpus::RUNNING_EXAMPLE).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let out = run(
        &t.dfg,
        &MemLayout::distinct(&t.cfg.vars),
        MachineConfig::unbounded().mem_latency(8),
    )
    .unwrap();
    assert_eq!(out.stats.collisions, 0);
    assert_eq!(out.stats.leftover_tokens, 0);
    // Iteration tags were allocated per loop trip (5 trips).
    assert_eq!(out.stats.tags_created, 5);
}

/// Fig 9: `x` is not used in the conditional. Under Schema 2 its token
/// still passes a switch (order constraint); the optimized construction
/// removes it, so `x := 0` no longer waits for the predicate `w == 0`.
#[test]
fn fig9_bypass_eliminates_switches() {
    let parsed = parse_to_cfg(cf2df::lang::corpus::FIG9).unwrap();
    let full = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let opt = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap();
    assert_eq!(full.stats.switches, 4);
    assert_eq!(opt.stats.switches, 2, "x's and w's switches eliminated");
}

/// Fig 9's behavioural claim: with the order constraint removed, the
/// computation of the predicate no longer delays the assignments to `x`.
/// Here the predicate needs a chain of three dependent array loads, so
/// under Schema 2 `x`'s switch — and everything after it — waits ~3
/// memory round-trips; the optimized translation lets `x` proceed.
#[test]
fn fig9_bypass_shortens_critical_path() {
    let src = "
        array c[2];
        x := x + 1;
        if c[c[c[0]]] == 0 then { y := 1; } else { z := 1; }
        x := x * 3;
        x := x + 7;
        x := x - 2;
    ";
    let parsed = parse_to_cfg(src).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let mc = MachineConfig::unbounded().mem_latency(10);
    let full = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let opt = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap();
    let o_full = run(&full.dfg, &layout, mc.clone()).unwrap();
    let o_opt = run(&opt.dfg, &layout, mc).unwrap();
    assert_eq!(o_full.memory, o_opt.memory);
    assert!(
        o_opt.stats.makespan < o_full.stats.makespan,
        "bypassing must shorten the critical path ({} vs {})",
        o_opt.stats.makespan,
        o_full.stats.makespan
    );
}

/// Fig 10/11 are validated structurally: the optimized construction never
/// produces a switch whose outputs immediately re-merge.
#[test]
fn fig10_11_no_redundant_switches() {
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let t = translate(&parsed.cfg, &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true))
        .unwrap();
        assert!(
            cf2df::dfg::validate::redundant_switches(&t.dfg).is_empty(),
            "{name}: redundant switch survived"
        );
    }
}

/// Figs 12–13 / §5: cover choice trades parallelism against
/// synchronization, "depending on the particular flowgraph".
///
/// (a) On the paper's FORTRAN example every operation involves `Z`'s alias
/// class, so no cover can add parallelism — there the single-token cover
/// wins outright by avoiding all synchronization.
/// (b) With an aliased pair *plus* independent unaliased variables, the
/// singleton cover buys real parallelism at the price of synch operations.
#[test]
fn fig12_13_cover_tradeoff() {
    let mc = MachineConfig::unbounded().mem_latency(6);

    // (a) FORTRAN example: singletons pay synchronization for nothing.
    let parsed = parse_to_cfg(cf2df::lang::corpus::FORTRAN_ALIAS).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let singles = translate(&parsed.cfg, &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::Singletons)).unwrap();
    let one = translate(&parsed.cfg, &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::SingleToken)).unwrap();
    assert!(singles.stats.synchs > 0, "singletons gather aliased tokens");
    assert_eq!(one.stats.synchs, 0, "one token never synchronizes");
    let o_singles = run(&singles.dfg, &layout, mc.clone()).unwrap();
    let o_one = run(&one.dfg, &layout, mc.clone()).unwrap();
    assert_eq!(o_singles.memory, o_one.memory);
    assert!(
        o_one.stats.makespan <= o_singles.stats.makespan,
        "Z is in every access set: extra tokens cannot help here"
    );

    // (b) Independent work alongside an aliased pair: singletons win.
    let src = "
        alias p ~ q;
        p := 1; q := 2;
        u := 3; v := 4;
        u := u * u + 1;  v := v * v + 2;
        u := u * 2 - 3;  v := v * 2 - 5;
        p := p + q;
    ";
    let parsed = parse_to_cfg(src).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let singles = translate(&parsed.cfg, &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::Singletons)).unwrap();
    let one = translate(&parsed.cfg, &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::SingleToken)).unwrap();
    let o_singles = run(&singles.dfg, &layout, mc.clone()).unwrap();
    let o_one = run(&one.dfg, &layout, mc).unwrap();
    assert_eq!(o_singles.memory, o_one.memory);
    assert!(
        o_singles.stats.makespan < o_one.stats.makespan,
        "u/v work overlaps under singleton covers ({} vs {})",
        o_singles.stats.makespan,
        o_one.stats.makespan
    );
}

/// Fig 14 / §6.3: array stores in successive iterations overlap after the
/// rewrite; the final memory is unchanged.
#[test]
fn fig14_array_store_parallelization() {
    let parsed = parse_to_cfg(cf2df::lang::corpus::ARRAY_LOOP).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let mc = MachineConfig::unbounded().mem_latency(40);
    let base = TranslateOptions::schema2().with_memory_elimination(true);
    let para = base.clone().with_array_parallelization(true);
    let t_base = translate(&parsed.cfg, &parsed.alias, &base).unwrap();
    let t_para = translate(&parsed.cfg, &parsed.alias, &para).unwrap();
    assert_eq!(t_para.array_sites_parallelized, 1);
    let o_base = run(&t_base.dfg, &layout, mc.clone()).unwrap();
    let o_para = run(&t_para.dfg, &layout, mc).unwrap();
    assert_eq!(o_base.memory, o_para.memory);
    assert!(
        o_para.stats.makespan < o_base.stats.makespan,
        "stores must overlap: {} vs {}",
        o_para.stats.makespan,
        o_base.stats.makespan
    );
}

/// §6.1: memory elimination removes loads and stores of unaliased scalars;
/// executed memory operations collapse to the per-variable writebacks (plus
/// array traffic).
#[test]
fn sec61_memory_elimination_removes_traffic() {
    let src = cf2df::lang::corpus::FIB;
    let parsed = parse_to_cfg(src).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let mc = MachineConfig::unbounded();
    let plain = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let elim = translate(&parsed.cfg, &parsed.alias,
        &TranslateOptions::schema2().with_memory_elimination(true)).unwrap();
    let o_plain = run(&plain.dfg, &layout, mc.clone()).unwrap();
    let o_elim = run(&elim.dfg, &layout, mc).unwrap();
    assert_eq!(o_plain.memory, o_elim.memory);
    let vars = parsed.cfg.vars.len() as u64;
    assert_eq!(
        o_elim.stats.mem_writes, vars,
        "only the final writebacks remain"
    );
    assert_eq!(o_elim.stats.mem_reads, 0);
    assert!(o_plain.stats.mem_reads > 20, "plain schema reads per use");
    assert!(
        o_elim.stats.makespan < o_plain.stats.makespan,
        "values on tokens shorten the critical path"
    );
}

/// §4.1 Definition/Theorem check on the paper's own postdominator facts:
/// every node has a unique immediate postdominator, tree-structured.
#[test]
fn postdominator_tree_is_well_formed_on_corpus() {
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let pd = DomTree::postdominators(&parsed.cfg);
        for n in parsed.cfg.node_ids() {
            if n == parsed.cfg.end() {
                assert_eq!(pd.idom(n), None);
            } else {
                let p = pd.idom(n)
                    .unwrap_or_else(|| panic!("{name}: {n:?} lacks an ipostdom"));
                assert!(pd.strictly_dominates(p, n));
            }
        }
    }
}

/// §6.3's write-once enhancement: placing the stencil's arrays in
/// I-structure memory lets the reading loop start while the writing loop
/// is still running — reads issued early are deferred by the memory, not
/// sequenced by tokens.
#[test]
fn sec63_istructures_overlap_reads_and_writes() {
    let parsed = parse_to_cfg(cf2df::lang::corpus::STENCIL).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let mc = MachineConfig::unbounded().mem_latency(20);
    // The optimized construction lets each loop's tokens bypass the other
    // loops; memory elimination keeps inductions on value tokens. What
    // still serializes the loops is the arrays' access lines — exactly
    // what the I-structure conversion removes.
    let base = TranslateOptions::optimized().with_memory_elimination(true);
    let ist = base
        .clone()
        .with_istructure_arrays(["src", "dst"]);
    let t_base = translate(&parsed.cfg, &parsed.alias, &base).unwrap();
    let t_ist = translate(&parsed.cfg, &parsed.alias, &ist).unwrap();
    assert!(t_ist.istructure_ops > 0);
    let o_base = run(&t_base.dfg, &layout, mc.clone()).unwrap();
    let o_ist = run(&t_ist.dfg, &layout, mc).unwrap();

    // Array values now live in I-structure memory; scalars stay ordinary.
    let vars = &parsed.cfg.vars;
    for name in ["src", "dst"] {
        let v = vars.lookup(name).unwrap();
        let base_cells = &o_base.memory
            [layout.base(v) as usize..(layout.base(v) + layout.cells(v)) as usize];
        let ist_cells = &o_ist.ist_memory
            [layout.base(v) as usize..(layout.base(v) + layout.cells(v)) as usize];
        assert_eq!(base_cells, ist_cells, "{name} contents preserved");
    }
    let checksum = vars.lookup("checksum").unwrap();
    assert_eq!(
        o_base.memory[layout.base(checksum) as usize],
        o_ist.memory[layout.base(checksum) as usize]
    );
    assert!(o_ist.stats.deferred_reads > 0, "reads overtook writes");
    assert!(
        o_ist.stats.makespan < o_base.stats.makespan,
        "loops overlap: {} vs {}",
        o_ist.stats.makespan,
        o_base.stats.makespan
    );
}

/// Footnote 3: multi-way branches. A `case` translates to one multi-way
/// switch per line that needs it; lines untouched by every arm bypass the
/// whole construct in the optimized translation, exactly as for binary
/// forks.
#[test]
fn footnote3_multiway_branches() {
    let src = "
        x := 1;
        sel := 2;
        case sel of {
            0 => { a := 10; }
            1 => { b := 20; }
            2 => { c := 30; }
            else => { d := 40; }
        }
        x := x + 100;
        total := a + b + c + d + x;
    ";
    let parsed = parse_to_cfg(src).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let oracle = cf2df::machine::vonneumann::interpret(
        &parsed.cfg,
        &layout,
        &MachineConfig::default(),
    )
    .unwrap();
    // sel == 2: c := 30; total = 0+0+30+0+101 = 131.
    let total = parsed.cfg.vars.lookup("total").unwrap();
    assert_eq!(oracle.memory[layout.base(total) as usize], 131);

    let full = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let opt = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap();
    for t in [&full, &opt] {
        let out = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(out.memory, oracle.memory);
        assert_eq!(out.stats.leftover_tokens, 0);
    }
    // Schema 2 switches every variable (7) at the case; the optimized
    // construction keeps only the arm-written lines (a, b, c, d) — x, sel,
    // and total bypass.
    assert_eq!(full.stats.switches, 7);
    assert_eq!(opt.stats.switches, 4);
    // The multi-way switch op really is multi-way (4 arms), not a chain of
    // binary switches.
    let case_ops = opt
        .dfg
        .op_ids()
        .filter(|&o| matches!(opt.dfg.kind(o), OpKind::CaseSwitch { arms: 4 }))
        .count();
    assert_eq!(case_ops, 4);
}
