#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# The workspace has a zero-external-dependency policy (see README
# "Offline, zero-dependency build"): everything below must pass on a
# machine with no network access and no cargo registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release --offline"
cargo build --release --offline

echo "==> tier-1: cargo test -q --offline"
cargo test -q --offline

echo "==> default features must be warning-free (full build, all targets)"
RUSTFLAGS="-Dwarnings" cargo build --workspace --all-targets --offline

echo "==> validate: certify corpus x schemas x optimized, + mutation slice"
# The static translation validator must certify the full corpus matrix
# with zero defects, and the seeded mutation harness must detect every
# injected translator bug (drop-arc, retarget-switch-output,
# delete-loop-exit, swap-merge-for-strict).
target/release/cf2df validate corpus --mutations --seeds 4

echo "==> chaos smoke: fault-injection campaign (cf2df chaos --quick)"
# Every run must match the deterministic simulator or return a typed
# machine error within the watchdog bound — no hangs, no aborts.
target/release/cf2df chaos --quick

echo "==> serve smoke: concurrent multi-invocation engine (cf2df serve --quick)"
# Every request is verified bit-for-bit against the deterministic
# simulator; exits non-zero on any mismatch or per-request error.
target/release/cf2df serve --quick
target/release/cf2df serve --quick --inflight 1 --workers 2 stencil

echo "==> bench smoke: cf2df bench --quick + artifact validation"
target/release/cf2df bench --quick --out-dir target/bench-smoke
# The throughput artifact also carries the multiplexed-serving
# acceptance gate: req/sec at inflight 4 on 4 workers must beat the
# back-to-back serial baseline by 1.3x on at least two workloads.
target/release/cf2df check-bench \
    target/bench-smoke/BENCH_pipeline.json \
    target/bench-smoke/BENCH_executor.json \
    target/bench-smoke/BENCH_translate.json \
    target/bench-smoke/BENCH_throughput.json \
    --require-inflight-speedup 1.3

echo "==> fusion gate: corpus equivalence + token-traffic reduction"
# Macro-op fusion must be execution-invisible (every corpus program x
# schema computes identical results fused and unfused) and must pay its
# way: on the loop_nest executor workloads the fused run processes at
# least 25% fewer tokens than the unfused one, at every worker count.
target/release/cf2df fuse-check
target/release/cf2df bench --quick --no-fuse --out-dir target/bench-smoke-nofuse
target/release/cf2df check-bench \
    target/bench-smoke/BENCH_executor.json \
    --compare target/bench-smoke-nofuse/BENCH_executor.json \
    --min-token-reduction 0.25:loop_nest

echo "==> bench regression gate: compare against committed quick baselines"
# Fails on schema errors, >25% wall-clock regression (median, with a
# 10 µs absolute floor), or any increase in deterministic counters
# (for translate: analyses computed per run). The executor artifact
# additionally passes the compiled-graph acceptance gate: loop_nest
# wall-clock medians (compile, simulator, and every worker width) must
# be at or below the committed quick baseline modulo a 20% jitter
# allowance — the dense runtime representation has to pay for itself,
# not just avoid a 25% regression. Because the gated medians sit inside
# scheduler jitter on a loaded single-core host, a breach triggers one
# fresh re-measurement before it counts: a real regression fails both
# runs, a scheduling hiccup does not.
target/release/cf2df check-bench \
    target/bench-smoke/BENCH_pipeline.json \
    --compare BENCH_pipeline.quick.json
if ! target/release/cf2df check-bench \
    target/bench-smoke/BENCH_executor.json \
    --compare BENCH_executor.quick.json \
    --require-wall-leq loop_nest; then
    echo "    executor gate breached; re-measuring once to rule out scheduler noise"
    target/release/cf2df bench --quick --out-dir target/bench-smoke-retry
    target/release/cf2df check-bench \
        target/bench-smoke-retry/BENCH_executor.json \
        --compare BENCH_executor.quick.json \
        --require-wall-leq loop_nest
fi
target/release/cf2df check-bench \
    target/bench-smoke/BENCH_translate.json \
    --compare BENCH_translate.quick.json
# Throughput rates are wall-clock and noisy on a shared host: like the
# executor gate, a breach triggers one fresh re-measurement before it
# counts.
if ! target/release/cf2df check-bench \
    target/bench-smoke/BENCH_throughput.json \
    --compare BENCH_throughput.quick.json; then
    echo "    throughput gate breached; re-measuring once to rule out scheduler noise"
    target/release/cf2df bench --quick --out-dir target/bench-smoke-retry
    target/release/cf2df check-bench \
        target/bench-smoke-retry/BENCH_throughput.json \
        --compare BENCH_throughput.quick.json
fi

echo "==> best-effort: --all-features (proptest = 8x heavy property mode)"
if cargo build --workspace --all-features --offline; then
    echo "    all-features build: ok"
else
    echo "    all-features build: FAILED (non-blocking)" >&2
fi

echo "verify: OK"
