//! Aliasing scenario (§5): a FORTRAN-style subroutine whose reference
//! parameters may alias. The same dataflow graph must compute the right
//! answer under *every* consistent parameter binding — shown here by
//! executing the paper's `SUBROUTINE F(X, Y, Z)` example under each of its
//! call patterns, and comparing covers on synchronization cost.
//!
//! ```text
//! cargo run --example fortran_aliasing
//! ```

use cf2df::cfg::{Cover, CoverStrategy, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::machine::{run, vonneumann, MachineConfig};

fn main() {
    // The body of F, with X ~ Z and Y ~ Z declared (X and Y are not
    // aliased to each other — Definition 6's relation is not transitive).
    let parsed = cf2df::lang::parse_to_cfg(cf2df::lang::corpus::FORTRAN_ALIAS).unwrap();
    let vars = &parsed.cfg.vars;
    let (x, y, z) = (
        vars.lookup("fx").unwrap(),
        vars.lookup("fy").unwrap(),
        vars.lookup("fz").unwrap(),
    );

    println!("alias classes: [X]={:?} [Y]={:?} [Z]={:?}",
        parsed.alias.class(x).len(), parsed.alias.class(y).len(), parsed.alias.class(z).len());
    let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
    println!(
        "token collection per op (Fig 12): X:{} Y:{} Z:{}",
        cover.access_set(x, &parsed.alias).len(),
        cover.access_set(y, &parsed.alias).len(),
        cover.access_set(z, &parsed.alias).len()
    );

    // One translation, three concrete call patterns:
    //   CALL F(A, B, A)  — X and Z share storage
    //   CALL F(C, D, D)  — Y and Z share storage
    //   CALL F(P, Q, R)  — all distinct
    let t = translate(
        &parsed.cfg,
        &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::Singletons),
    )
    .unwrap();
    let mc = MachineConfig::unbounded().mem_latency(4);
    let bindings: Vec<(&str, Vec<Vec<cf2df::cfg::VarId>>)> = vec![
        ("CALL F(A, B, A)", vec![vec![x, z], vec![y]]),
        ("CALL F(C, D, D)", vec![vec![y, z], vec![x]]),
        ("CALL F(P, Q, R)", vec![vec![x], vec![y], vec![z]]),
    ];
    for (call, binding) in bindings {
        let layout = MemLayout::with_binding(vars, &binding);
        let out = run(&t.dfg, &layout, mc.clone()).unwrap();
        let oracle = vonneumann::interpret(&parsed.cfg, &layout, &mc).unwrap();
        assert_eq!(out.memory, oracle.memory);
        println!(
            "{call}: final X={} Y={} Z={}  (matches sequential semantics)",
            out.memory[layout.base(x) as usize],
            out.memory[layout.base(y) as usize],
            out.memory[layout.base(z) as usize]
        );
    }

    // Cover comparison: parallelism vs synchronization (§5's tradeoff).
    println!("\ncover comparison on the subroutine body:");
    for strategy in [
        CoverStrategy::Singletons,
        CoverStrategy::AliasClasses,
        CoverStrategy::SingleToken,
    ] {
        let cover = Cover::build(&strategy, &parsed.alias);
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(strategy.clone()),
        )
        .unwrap();
        let layout = MemLayout::distinct(vars);
        let out = run(&t.dfg, &layout, mc.clone()).unwrap();
        println!(
            "  {:<14} tokens={} synch-cost={} graph-synchs={} makespan={}",
            format!("{strategy:?}"),
            cover.len(),
            cover.synchronization_cost(&parsed.alias),
            t.stats.synchs,
            out.stats.makespan
        );
    }
}
