//! Machine-room scenario: everything the simulated explicit-token-store
//! machine can tell you about one program — execution trace, parallelism
//! profile, processor scaling, waiting-matching (frame) pressure, and the
//! I-structure variant.
//!
//! ```text
//! cargo run --example machine_room
//! ```

use cf2df::cfg::MemLayout;
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::machine::{run, run_traced, MachineConfig};

fn main() {
    let parsed = cf2df::lang::parse_to_cfg(cf2df::lang::corpus::STENCIL).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let opts = TranslateOptions::optimized().with_memory_elimination(true);
    let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
    println!("graph: {}", t.stats.summary());

    // 1. A short execution trace (first 12 time steps).
    let (out, trace) = run_traced(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    println!("\nfirst steps of the run:");
    for line in trace.timeline(&t.dfg).lines().take(12) {
        println!("  {line}");
    }
    println!("  …");
    println!(
        "run: {} (peak {} ops in one step, {} rendezvous slots live at peak)",
        out.stats.summary(),
        out.stats.max_parallelism,
        out.stats.max_pending_slots
    );

    // 2. Parallelism profile: how many operators issue per step.
    println!("\nparallelism profile (ops per time step, first 40 steps):");
    let profile: Vec<u32> = out.stats.profile.iter().copied().take(40).collect();
    for (i, chunk) in profile.chunks(20).enumerate() {
        let bars: String = chunk
            .iter()
            .map(|&c| match c {
                0 => '.',
                1..=2 => '▁',
                3..=5 => '▄',
                _ => '█',
            })
            .collect();
        println!("  t={:>3}.. {}", i * 20, bars);
    }

    // 3. Finite-processor scaling.
    println!("\nprocessor scaling:");
    for p in [1usize, 2, 4, 8] {
        let o = run(&t.dfg, &layout, MachineConfig::with_processors(p)).unwrap();
        println!("  P={p}: makespan {}", o.stats.makespan);
    }

    // 4. Frame-capacity threshold (the waiting-matching store).
    println!("\nwaiting-matching store sizing:");
    for cap in [8usize, out.stats.max_pending_slots as usize] {
        match run(&t.dfg, &layout, MachineConfig::unbounded().frame_capacity(cap)) {
            Ok(o) => println!("  capacity {cap}: makespan {}", o.stats.makespan),
            Err(e) => println!("  capacity {cap}: {e}"),
        }
    }

    // 5. The §6.3 I-structure variant: reads overtake writes.
    let ist = translate(
        &parsed.cfg,
        &parsed.alias,
        &opts.clone().with_istructure_arrays(["src", "dst"]),
    )
    .unwrap();
    let mc = MachineConfig::unbounded().mem_latency(8);
    let before = run(&t.dfg, &layout, mc.clone()).unwrap();
    let after = run(&ist.dfg, &layout, mc).unwrap();
    println!(
        "\nI-structures (latency 8): makespan {} → {} ({} reads deferred past their writes)",
        before.stats.makespan, after.stats.makespan, after.stats.deferred_reads
    );
}
