//! Quickstart: translate an imperative program to a dataflow graph and run
//! it on the simulated explicit-token-store machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cf2df::cfg::MemLayout;
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::machine::{run, vonneumann, MachineConfig};

fn main() {
    let source = "
        # Sum of squares, imperatively.
        n := 10;
        s := 0;
        for i := 1 to n do {
            s := s + i * i;
        }
    ";

    // 1. Parse and lower to the statement-level control-flow graph (§2.1).
    let parsed = cf2df::lang::parse_to_cfg(source).expect("valid program");
    println!("control-flow graph:\n{}", parsed.cfg.pretty());

    // 2. Translate to a dataflow graph — Schema 2: one access token per
    //    variable, loop control inserted by interval analysis (§3).
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2())
        .expect("translates");
    println!("dataflow graph: {}", t.stats.summary());

    // 3. Execute on the dataflow machine (unbounded processors: the
    //    makespan is the critical path).
    let layout = MemLayout::distinct(&t.cfg.vars);
    let out = run(&t.dfg, &layout, MachineConfig::unbounded()).expect("runs");
    let s = t.cfg.vars.lookup("s").unwrap();
    println!(
        "result: s = {} (expected 385), {}",
        out.memory[layout.base(s) as usize],
        out.stats.summary()
    );

    // 4. Compare with the sequential von Neumann baseline.
    let base = vonneumann::interpret(&parsed.cfg, &layout, &MachineConfig::default())
        .expect("interprets");
    assert_eq!(out.memory, base.memory, "dataflow = sequential semantics");
    println!(
        "sequential baseline: {} time units; dataflow critical path: {} ({}x)",
        base.stats.makespan,
        out.stats.makespan,
        base.stats.makespan as f64 / out.stats.makespan as f64
    );
}
