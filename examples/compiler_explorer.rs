//! Compiler-explorer scenario: inspect every stage of the translation for
//! a program — CFG, loop control, switch placement, and the dataflow
//! graphs each schema produces (with DOT output for rendering).
//!
//! ```text
//! cargo run --example compiler_explorer                 # built-in demo
//! cargo run --example compiler_explorer -- path/to.imp  # your program
//! cargo run --example compiler_explorer -- --dot        # emit DOT
//! ```

use cf2df::cfg::loop_control::insert_loop_control;
use cf2df::cfg::{Cover, CoverStrategy, Stmt};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::core::switch_place::SwitchPlacement;
use cf2df::core::Lines;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_dot = args.iter().any(|a| a == "--dot");
    let source = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|p| std::fs::read_to_string(p).expect("readable source file"))
        .unwrap_or_else(|| cf2df::lang::corpus::FIG9.to_owned());

    let parsed = cf2df::lang::parse_to_cfg(&source).expect("valid program");
    println!("== control-flow graph (Fig 1 style) ==");
    println!("{}", parsed.cfg.pretty());

    let lc = insert_loop_control(&parsed.cfg).expect("reducible");
    if !lc.entry_node.is_empty() {
        println!("== after loop-control insertion (§3) ==");
        println!("{}", lc.cfg.pretty());
    }

    // Switch placement (Fig 10 / Theorem 1).
    let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
    let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
    let sp = SwitchPlacement::compute(&lc, &lines);
    println!("== switch placement (Fig 10): fork x line -> needed? ==");
    for n in lc.cfg.node_ids() {
        if !matches!(lc.cfg.stmt(n), Stmt::Branch { .. }) {
            continue;
        }
        let needed: Vec<String> = lines
            .ids()
            .filter(|&l| sp.needs_switch(n, l))
            .map(|l| lines.name(l).to_owned())
            .collect();
        println!(
            "  {n:?} [{}]: switches for {{{}}}",
            lc.cfg.stmt(n).display(&lc.cfg.vars),
            needed.join(", ")
        );
    }

    for (label, opts) in [
        ("schema 1 (single token)", TranslateOptions::schema1()),
        (
            "schema 2 (token per variable)",
            TranslateOptions::schema3(CoverStrategy::Singletons),
        ),
        (
            "optimized (§4, no redundant switches)",
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
        ),
        (
            "full parallel (§4 + §6 transforms)",
            TranslateOptions::full_parallel_schema3(),
        ),
    ] {
        let t = translate(&parsed.cfg, &parsed.alias, &opts).expect("translates");
        println!("\n== {label} ==\n{}", t.stats.summary());
        if want_dot {
            println!("{}", cf2df::dfg::dot::dfg_to_dot(&t.dfg, label));
        } else {
            println!("{}", t.dfg.pretty());
        }
    }
}
