//! Parallelization-study scenario: the paper pitches the dataflow model as
//! "ideally suited for measuring the extent to which parallelization
//! techniques can expose parallelism in imperative language programs".
//! This example does exactly that: for each corpus program it reports the
//! parallelism each translation level exposes, and how much of it survives
//! on machines with finitely many processors.
//!
//! ```text
//! cargo run --example parallelism_study
//! ```

use cf2df::bench::harness::{measure, measure_baseline};
use cf2df::cfg::{CoverStrategy, MemLayout};
use cf2df::core::pipeline::{translate, TranslateOptions};
use cf2df::machine::{run, MachineConfig};

fn main() {
    let mc = MachineConfig::unbounded();
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9}   speedup over sequential",
        "program", "schema1", "schema2", "optim", "full"
    );
    for (name, src) in cf2df::lang::corpus::all() {
        let parsed = cf2df::lang::parse_to_cfg(src).unwrap();
        let base = measure_baseline(&parsed, &mc);
        let mut cells = Vec::new();
        for opts in [
            TranslateOptions::schema1(),
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            TranslateOptions::full_parallel_schema3(),
        ] {
            let m = measure(&parsed, &opts, &mc, name);
            assert_eq!(m.memory, base.memory, "{name}: semantics preserved");
            cells.push(base.makespan as f64 / m.makespan.max(1) as f64);
        }
        println!(
            "{:<16} {:>8.2}x {:>8.2}x {:>8.2}x {:>8.2}x",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }

    // How much parallelism survives with P processors? (amdahl-style view)
    println!("\nfinite-processor scaling (optimized translation, `stencil`):");
    let parsed = cf2df::lang::parse_to_cfg(cf2df::lang::corpus::STENCIL).unwrap();
    let t = translate(
        &parsed.cfg,
        &parsed.alias,
        &TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
    )
    .unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    let unbounded = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    println!("  P=∞ : makespan {}", unbounded.stats.makespan);
    for p in [1usize, 2, 4, 8, 16] {
        let out = run(&t.dfg, &layout, MachineConfig::with_processors(p)).unwrap();
        println!(
            "  P={p:<2}: makespan {} (efficiency {:.0}%)",
            out.stats.makespan,
            100.0 * unbounded.stats.makespan as f64 / out.stats.makespan as f64
        );
    }
}
